//! Virtual data integration of graph databases (§4 of the paper).
//!
//! In the LAV reading, each source `S_i` is a binary relation of nodes,
//! described as a view `q_i` over a global schema `γ`: an instance `D` of
//! `γ` is consistent with the sources when `S_i ⊆ q_i(D)` for all `i`.
//! Query answering is certain answers over all consistent `D` — which is
//! *precisely* query answering under the LAV GSM `{(s_i, q_i)}` where each
//! source is a fresh edge label `s_i` holding the source tuples.
//!
//! [`Integration`] wraps that construction behind a task-oriented API.

use crate::certain::{CertainAnswers, SolveError};
use crate::engine::{answer_once, solve_error, Answer, Semantics};
use crate::exact::{certain_answers_exact, ExactError, ExactOptions};
use crate::gsm::Gsm;
use gde_automata::Regex;
use gde_datagraph::{Alphabet, DataGraph, GraphError, NodeId, Value};
use gde_dataquery::DataQuery;

/// A LAV virtual-integration task under construction.
#[derive(Clone, Debug)]
pub struct Integration {
    gsm: Gsm,
    sources: DataGraph,
}

impl Integration {
    /// Start a task over a global schema (the target alphabet `γ`).
    pub fn new(global_schema: Alphabet) -> Integration {
        let source_alphabet = Alphabet::new();
        Integration {
            gsm: Gsm::new(source_alphabet.clone(), global_schema),
            sources: DataGraph::with_alphabet(source_alphabet),
        }
    }

    /// Register a source relation with its LAV view (an RPQ over the global
    /// schema) and its tuples. Tuples carry full nodes `(id, value)`; a node
    /// id seen twice must carry the same value.
    #[allow(clippy::type_complexity)]
    pub fn add_source(
        &mut self,
        name: &str,
        view: Regex,
        tuples: &[((NodeId, Value), (NodeId, Value))],
    ) -> Result<&mut Self, GraphError> {
        let label = self.sources.alphabet_mut().intern(name);
        // keep the mapping's source alphabet in sync
        let mapping_label = {
            let mut m = Gsm::new(
                self.sources.alphabet().clone(),
                self.gsm.target_alphabet().clone(),
            );
            for r in self.gsm.rules() {
                m.add_rule(r.source.clone(), r.target.clone());
            }
            self.gsm = m;
            label
        };
        for ((u, uv), (v, vv)) in tuples {
            for (id, val) in [(u, uv), (v, vv)] {
                match self.sources.value(*id) {
                    None => self.sources.add_node(*id, val.clone())?,
                    Some(existing) if existing == val => {}
                    Some(_) => return Err(GraphError::DuplicateNode(*id)),
                }
            }
            self.sources.add_edge(*u, mapping_label, *v)?;
        }
        self.gsm.add_rule(Regex::Atom(mapping_label), view);
        Ok(self)
    }

    /// The underlying LAV GSM.
    pub fn gsm(&self) -> &Gsm {
        &self.gsm
    }

    /// The combined source graph (one edge label per source).
    pub fn sources(&self) -> &DataGraph {
        &self.sources
    }

    /// Certain answers over global instances with SQL-null values
    /// (tractable; requires word views, i.e. a relational mapping).
    pub fn certain_answers(&self, q: &DataQuery) -> Result<CertainAnswers, SolveError> {
        answer_once(&self.gsm, &self.sources, &q.compile(), Semantics::nulls())
            .map(Answer::into_tuples)
            .map_err(solve_error)
    }

    /// Exact certain answers (exponential; relational views only).
    pub fn certain_answers_exact(
        &self,
        q: &DataQuery,
        opts: ExactOptions,
    ) -> Result<CertainAnswers, ExactError> {
        certain_answers_exact(&self.gsm, q, &self.sources, opts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gde_automata::parse_regex;
    use gde_dataquery::parse_ree;

    /// Two sources over a global "social" schema γ = {knows, works_with}:
    /// S1 tuples are pairs connected by `knows·works_with`, S2 by `knows`.
    fn task() -> Integration {
        let mut global = Alphabet::from_labels(["knows", "works_with"]);
        let mut task = Integration::new(global.clone());
        let v1 = parse_regex("knows works_with", &mut global).unwrap();
        let v2 = parse_regex("knows", &mut global).unwrap();
        task.add_source(
            "s1",
            v1,
            &[(
                (NodeId(0), Value::str("ann")),
                (NodeId(1), Value::str("bob")),
            )],
        )
        .unwrap();
        task.add_source(
            "s2",
            v2,
            &[
                (
                    (NodeId(1), Value::str("bob")),
                    (NodeId(2), Value::str("cat")),
                ),
                (
                    (NodeId(2), Value::str("cat")),
                    (NodeId(0), Value::str("ann")),
                ),
            ],
        )
        .unwrap();
        task
    }

    #[test]
    fn mapping_is_lav() {
        let t = task();
        assert!(t.gsm().classify().lav);
        assert_eq!(t.gsm().len(), 2);
        assert_eq!(t.sources().edge_count(), 3);
    }

    #[test]
    fn navigational_certain_answers() {
        let t = task();
        let mut g = t.gsm().target_alphabet().clone();
        // certain: 1 knows 2 (from s2); 0 reaches 1 via knows·works_with
        let q: DataQuery = parse_ree("knows", &mut g).unwrap().into();
        let ans = t.certain_answers(&q).unwrap().into_pairs();
        assert_eq!(ans, vec![(NodeId(1), NodeId(2)), (NodeId(2), NodeId(0))]);
        let q: DataQuery = parse_ree("knows works_with", &mut g).unwrap().into();
        let ans = t.certain_answers(&q).unwrap().into_pairs();
        assert_eq!(ans, vec![(NodeId(0), NodeId(1))]);
    }

    #[test]
    fn data_aware_certain_answers() {
        let t = task();
        let mut g = t.gsm().target_alphabet().clone();
        // endpoints with different names along knows
        let q: DataQuery = parse_ree("knows!=", &mut g).unwrap().into();
        let ans = t.certain_answers(&q).unwrap().into_pairs();
        assert_eq!(ans, vec![(NodeId(1), NodeId(2)), (NodeId(2), NodeId(0))]);
    }

    #[test]
    fn value_conflicts_rejected() {
        let mut global = Alphabet::from_labels(["knows"]);
        let mut t = Integration::new(global.clone());
        let v = parse_regex("knows", &mut global).unwrap();
        let err = t.add_source(
            "s1",
            v,
            &[
                (
                    (NodeId(0), Value::str("ann")),
                    (NodeId(1), Value::str("bob")),
                ),
                (
                    (NodeId(0), Value::str("imposter")),
                    (NodeId(1), Value::str("bob")),
                ),
            ],
        );
        assert!(err.is_err());
    }

    #[test]
    fn exact_matches_nulls_on_simple_views() {
        let t = task();
        let mut g = t.gsm().target_alphabet().clone();
        let q: DataQuery = parse_ree("knows works_with", &mut g).unwrap().into();
        let a = t.certain_answers(&q).unwrap().into_pairs();
        let b = t
            .certain_answers_exact(&q, ExactOptions::default())
            .unwrap()
            .into_pairs();
        assert_eq!(a, b);
    }
}
