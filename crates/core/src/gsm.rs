//! Graph schema mappings (Definition 1 of the paper) and their
//! classification (LAV, GAV, relational, relational/reachability).

use gde_automata::{Nfa, Regex};
use gde_datagraph::{Alphabet, DataGraph, Label, NodeId};

/// One mapping rule `(q, q')`: an RPQ over the source alphabet paired with
/// an RPQ over the target alphabet.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Rule {
    /// Source-side RPQ `q` over `Σ_s`.
    pub source: Regex,
    /// Target-side RPQ `q'` over `Σ_t`.
    pub target: Regex,
}

/// Classification of a mapping, per §4–§6 of the paper.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct MappingClass {
    /// Every source query is atomic (a single letter) — local-as-view.
    pub lav: bool,
    /// Every target query is atomic — global-as-view.
    pub gav: bool,
    /// Every target query is a word RPQ (Definition 3).
    pub relational: bool,
    /// Every target query is a word RPQ or the reachability query `Σ_t*`
    /// (the §5 class for which Theorem 1 proves undecidability).
    pub relational_reachability: bool,
}

/// A graph schema mapping `M`: a set of rules over `(Σ_s, Σ_t)`.
///
/// `(G_s, G_t) |= M` iff `q(G_s) ⊆ q'(G_t)` for every rule — where
/// containment is over *nodes with their data values*: a pair
/// `((n,d), (n',d'))` in a source answer must appear, with the same ids and
/// the same values, in the target answer.
#[derive(Clone, Debug)]
pub struct Gsm {
    source_alphabet: Alphabet,
    target_alphabet: Alphabet,
    rules: Vec<Rule>,
}

impl Gsm {
    /// Create a mapping over the two alphabets.
    pub fn new(source_alphabet: Alphabet, target_alphabet: Alphabet) -> Gsm {
        Gsm {
            source_alphabet,
            target_alphabet,
            rules: Vec::new(),
        }
    }

    /// The source alphabet `Σ_s`.
    pub fn source_alphabet(&self) -> &Alphabet {
        &self.source_alphabet
    }

    /// The target alphabet `Σ_t`.
    pub fn target_alphabet(&self) -> &Alphabet {
        &self.target_alphabet
    }

    /// Add a rule.
    pub fn add_rule(&mut self, source: Regex, target: Regex) -> &mut Self {
        self.rules.push(Rule { source, target });
        self
    }

    /// The rules.
    pub fn rules(&self) -> &[Rule] {
        &self.rules
    }

    /// Number of rules.
    pub fn len(&self) -> usize {
        self.rules.len()
    }

    /// Is the mapping empty (every target is a solution)?
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// A LAV "copy" mapping `{(a, a) | a ∈ Σ}` over a shared alphabet —
    /// the identity mapping used by Theorem 6 and many tests.
    pub fn copy_mapping(alphabet: &Alphabet) -> Gsm {
        let mut m = Gsm::new(alphabet.clone(), alphabet.clone());
        for l in alphabet.labels() {
            m.add_rule(Regex::Atom(l), Regex::Atom(l));
        }
        m
    }

    /// Classify the mapping.
    pub fn classify(&self) -> MappingClass {
        let lav = self.rules.iter().all(|r| r.source.as_atom().is_some());
        let gav = self.rules.iter().all(|r| r.target.as_atom().is_some());
        let relational = self.rules.iter().all(|r| r.target.as_word().is_some());
        let relational_reachability = self.rules.iter().all(|r| {
            r.target.as_word().is_some() || r.target.is_reachability(&self.target_alphabet)
        });
        MappingClass {
            lav,
            gav,
            relational,
            relational_reachability,
        }
    }

    /// Is this a relational mapping (Definition 3)?
    pub fn is_relational(&self) -> bool {
        self.classify().relational
    }

    /// Evaluate a rule's source query on the source graph.
    pub fn source_answers(&self, rule: &Rule, gs: &DataGraph) -> Vec<(NodeId, NodeId)> {
        Nfa::from_regex(&rule.source).eval_pairs(gs)
    }

    /// `dom(M, G_s)`: all nodes appearing in some source-query answer
    /// (sorted, deduplicated). These are exactly the nodes that every
    /// solution must contain with their source values.
    pub fn dom(&self, gs: &DataGraph) -> Vec<NodeId> {
        let mut out: Vec<NodeId> = Vec::new();
        for rule in &self.rules {
            for (u, v) in self.source_answers(rule, gs) {
                out.push(u);
                out.push(v);
            }
        }
        out.sort();
        out.dedup();
        out
    }

    /// Does *any* solution exist for this source graph? The only
    /// obstructions are rules whose target language is empty (while the
    /// source query matches) or contains only ε (while a source pair has
    /// distinct endpoints).
    pub fn has_solution(&self, gs: &DataGraph) -> bool {
        for rule in &self.rules {
            let pairs = self.source_answers(rule, gs);
            if pairs.is_empty() {
                continue;
            }
            let nfa = Nfa::from_regex(&rule.target);
            if !nfa.language_nonempty() {
                return false;
            }
            // is there a non-empty word? (all targets can be satisfied by a
            // fresh path then)
            let only_epsilon = rule.target.max_word_len() == Some(0);
            if only_epsilon && pairs.iter().any(|(u, v)| u != v) {
                return false;
            }
        }
        true
    }

    /// Parse a mapping from its text form: one `rule <src-rpq> => <tgt-rpq>`
    /// per line, `#` comments, blank lines ignored. Source labels are
    /// resolved against (and extend) `source_alphabet`; target labels build
    /// a fresh target alphabet. This is the format the `gde` CLI reads.
    pub fn parse_mapping_text(text: &str, source_alphabet: &Alphabet) -> Result<Gsm, String> {
        let mut sa = source_alphabet.clone();
        let mut ta = Alphabet::new();
        let mut rules: Vec<(Regex, Regex)> = Vec::new();
        for (i, line) in text.lines().enumerate() {
            let line = line.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let rest = line
                .strip_prefix("rule")
                .ok_or_else(|| format!("line {}: expected 'rule <src> => <tgt>'", i + 1))?;
            let (src, tgt) = rest
                .split_once("=>")
                .ok_or_else(|| format!("line {}: missing '=>'", i + 1))?;
            let q = gde_automata::parse_regex(src.trim(), &mut sa)
                .map_err(|e| format!("line {}: {e}", i + 1))?;
            let q2 = gde_automata::parse_regex(tgt.trim(), &mut ta)
                .map_err(|e| format!("line {}: {e}", i + 1))?;
            rules.push((q, q2));
        }
        let mut m = Gsm::new(sa, ta);
        for (q, q2) in rules {
            m.add_rule(q, q2);
        }
        Ok(m)
    }

    /// Check `(G_s, G_t) |= M`.
    ///
    /// Target-side labels are matched by *name* between the mapping's target
    /// alphabet and the target graph's alphabet, so graphs built with an
    /// independent interner still check correctly.
    pub fn is_solution(&self, gs: &DataGraph, gt: &DataGraph) -> bool {
        // translate mapping target labels into gt's alphabet
        let lmap: Vec<Option<Label>> = self
            .target_alphabet
            .iter()
            .map(|(_, name)| gt.alphabet().label(name))
            .collect();
        for rule in &self.rules {
            let src_pairs = self.source_answers(rule, gs);
            if src_pairs.is_empty() {
                continue;
            }
            let translated = match translate_regex(&rule.target, &lmap) {
                Some(e) => e,
                None => {
                    // target uses a label gt does not even have: the rule can
                    // still hold if its language is empty or if no source
                    // pairs exist (handled above)
                    return false;
                }
            };
            let nfa = Nfa::from_regex(&translated);
            for (u, v) in src_pairs {
                // nodes must be present with identical data values
                if gs.value(u) != gt.value(u) || gs.value(v) != gt.value(v) {
                    return false;
                }
                if !nfa.eval_from(gt, u).contains(&v) {
                    return false;
                }
            }
        }
        true
    }
}

/// Rewrite a regex over the mapping's target alphabet into the graph's
/// alphabet; `None` if some label is missing there.
pub(crate) fn translate_regex(e: &Regex, lmap: &[Option<Label>]) -> Option<Regex> {
    Some(match e {
        Regex::Empty => Regex::Empty,
        Regex::Epsilon => Regex::Epsilon,
        Regex::Atom(l) => Regex::Atom(lmap[l.index()]?),
        Regex::Concat(es) => Regex::Concat(
            es.iter()
                .map(|e| translate_regex(e, lmap))
                .collect::<Option<Vec<_>>>()?,
        ),
        Regex::Union(es) => Regex::Union(
            es.iter()
                .map(|e| translate_regex(e, lmap))
                .collect::<Option<Vec<_>>>()?,
        ),
        Regex::Plus(e) => Regex::Plus(Box::new(translate_regex(e, lmap)?)),
        Regex::Star(e) => Regex::Star(Box::new(translate_regex(e, lmap)?)),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use gde_automata::parse_regex;
    use gde_datagraph::Value;

    fn alphabets() -> (Alphabet, Alphabet) {
        (
            Alphabet::from_labels(["a", "b"]),
            Alphabet::from_labels(["x", "y"]),
        )
    }

    fn simple_mapping() -> Gsm {
        let (mut sa, mut ta) = alphabets();
        let qa = parse_regex("a", &mut sa).unwrap();
        let qxy = parse_regex("x y", &mut ta).unwrap();
        let mut m = Gsm::new(sa, ta);
        m.add_rule(qa, qxy);
        m
    }

    fn source() -> DataGraph {
        let mut g = DataGraph::new();
        g.add_node(NodeId(0), Value::int(10)).unwrap();
        g.add_node(NodeId(1), Value::int(20)).unwrap();
        g.add_edge_str(NodeId(0), "a", NodeId(1)).unwrap();
        g.add_edge_str(NodeId(1), "b", NodeId(0)).unwrap();
        g
    }

    #[test]
    fn classification() {
        let m = simple_mapping();
        let c = m.classify();
        assert!(c.lav);
        assert!(!c.gav);
        assert!(c.relational);
        assert!(c.relational_reachability);

        // add a reachability rule: stays relational/reachability, loses
        // relational
        let mut m2 = m.clone();
        let reach = Regex::reachability(m2.target_alphabet());
        m2.add_rule(Regex::Atom(m2.source_alphabet().label("b").unwrap()), reach);
        let c2 = m2.classify();
        assert!(!c2.relational);
        assert!(c2.relational_reachability);

        // a Kleene-starred non-universal target breaks both
        let mut m3 = m.clone();
        let xstar = Regex::Star(Box::new(Regex::Atom(
            m3.target_alphabet().label("x").unwrap(),
        )));
        m3.add_rule(Regex::Atom(m3.source_alphabet().label("a").unwrap()), xstar);
        let c3 = m3.classify();
        assert!(!c3.relational);
        assert!(!c3.relational_reachability);
    }

    #[test]
    fn copy_mapping_is_lav_gav() {
        let al = Alphabet::from_labels(["a", "b"]);
        let m = Gsm::copy_mapping(&al);
        let c = m.classify();
        assert!(c.lav && c.gav && c.relational);
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn dom_collects_answer_nodes() {
        let m = simple_mapping();
        let gs = source();
        assert_eq!(m.dom(&gs), vec![NodeId(0), NodeId(1)]);
    }

    #[test]
    fn solution_checking_positive() {
        let m = simple_mapping();
        let gs = source();
        let mut gt = DataGraph::new();
        gt.add_node(NodeId(0), Value::int(10)).unwrap();
        gt.add_node(NodeId(1), Value::int(20)).unwrap();
        gt.add_node(NodeId(5), Value::int(99)).unwrap();
        gt.add_edge_str(NodeId(0), "x", NodeId(5)).unwrap();
        gt.add_edge_str(NodeId(5), "y", NodeId(1)).unwrap();
        assert!(m.is_solution(&gs, &gt));
    }

    #[test]
    fn solution_checking_negative_missing_path() {
        let m = simple_mapping();
        let gs = source();
        let mut gt = DataGraph::new();
        gt.add_node(NodeId(0), Value::int(10)).unwrap();
        gt.add_node(NodeId(1), Value::int(20)).unwrap();
        gt.add_edge_str(NodeId(0), "x", NodeId(1)).unwrap(); // x alone ≠ x y
        assert!(!m.is_solution(&gs, &gt));
    }

    #[test]
    fn solution_checking_negative_wrong_value() {
        let m = simple_mapping();
        let gs = source();
        let mut gt = DataGraph::new();
        gt.add_node(NodeId(0), Value::int(10)).unwrap();
        gt.add_node(NodeId(1), Value::int(999)).unwrap(); // value mismatch
        gt.add_node(NodeId(5), Value::int(0)).unwrap();
        gt.add_edge_str(NodeId(0), "x", NodeId(5)).unwrap();
        gt.add_edge_str(NodeId(5), "y", NodeId(1)).unwrap();
        assert!(!m.is_solution(&gs, &gt));
    }

    #[test]
    fn solution_checking_nodes_must_exist() {
        let m = simple_mapping();
        let gs = source();
        let gt = DataGraph::new();
        assert!(!m.is_solution(&gs, &gt));
    }

    #[test]
    fn mapping_text_roundtrip() {
        let sa = Alphabet::from_labels(["follows", "paid"]);
        let text = r#"
# social → contact exchange
rule follows => knows trusts
rule paid+  => owes   # chains of payments become one debt edge
"#;
        let m = Gsm::parse_mapping_text(text, &sa).unwrap();
        assert_eq!(m.len(), 2);
        assert!(m.classify().relational);
        assert!(!m.classify().gav);
        assert_eq!(
            m.rules()[1].target.as_atom(),
            m.target_alphabet().label("owes")
        );
        // errors carry line numbers
        let err = Gsm::parse_mapping_text("regel a => b", &sa).unwrap_err();
        assert!(err.contains("line 1"));
        let err = Gsm::parse_mapping_text("rule a -> b", &sa).unwrap_err();
        assert!(err.contains("missing '=>'"));
    }

    #[test]
    fn solution_existence() {
        let gs = source();
        // normal mapping: always satisfiable
        assert!(simple_mapping().has_solution(&gs));
        // ε-only target over a non-loop pair: unsatisfiable
        let (mut sa, ta) = alphabets();
        let mut m = Gsm::new(sa.clone(), ta.clone());
        m.add_rule(parse_regex("a", &mut sa).unwrap(), Regex::Epsilon);
        assert!(!m.has_solution(&gs));
        // but fine on a source whose a-pairs are loops
        let mut loopy = DataGraph::new();
        loopy.add_node(NodeId(0), Value::int(1)).unwrap();
        loopy.add_edge_str(NodeId(0), "a", NodeId(0)).unwrap();
        loopy.alphabet_mut().intern("b");
        assert!(m.has_solution(&loopy));
        // empty target language: unsatisfiable when the source query fires
        let (mut sa2, ta2) = alphabets();
        let mut m2 = Gsm::new(sa2.clone(), ta2);
        m2.add_rule(parse_regex("a", &mut sa2).unwrap(), Regex::Empty);
        assert!(!m2.has_solution(&gs));
        // ...but vacuously fine when it does not
        let mut empty_src = DataGraph::new();
        empty_src.alphabet_mut().intern("a");
        empty_src.alphabet_mut().intern("b");
        assert!(m2.has_solution(&empty_src));
    }

    #[test]
    fn empty_mapping_accepts_anything() {
        let (sa, ta) = alphabets();
        let m = Gsm::new(sa, ta);
        assert!(m.is_empty());
        assert!(m.is_solution(&source(), &DataGraph::new()));
    }

    #[test]
    fn reachability_rule_satisfied_by_any_path() {
        let (mut sa, ta) = alphabets();
        let qa = parse_regex("a", &mut sa).unwrap();
        let mut m = Gsm::new(sa, ta.clone());
        m.add_rule(qa, Regex::reachability(&ta));
        let gs = source();
        // solution: a long zig-zag path 0 -x-> 7 -y-> 8 -x-> 1
        let mut gt = DataGraph::new();
        gt.add_node(NodeId(0), Value::int(10)).unwrap();
        gt.add_node(NodeId(1), Value::int(20)).unwrap();
        gt.add_node(NodeId(7), Value::int(1)).unwrap();
        gt.add_node(NodeId(8), Value::int(2)).unwrap();
        gt.add_edge_str(NodeId(0), "x", NodeId(7)).unwrap();
        gt.add_edge_str(NodeId(7), "y", NodeId(8)).unwrap();
        gt.add_edge_str(NodeId(8), "x", NodeId(1)).unwrap();
        assert!(m.is_solution(&gs, &gt));
        // but a graph lacking the connectivity is not
        let bad = {
            let mut b = DataGraph::new();
            b.add_node(NodeId(0), Value::int(10)).unwrap();
            b.add_node(NodeId(1), Value::int(20)).unwrap();
            b
        };
        assert!(!m.is_solution(&gs, &bad));
    }
}
