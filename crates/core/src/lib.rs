//! # gde-core
//!
//! Graph schema mappings and certain-answer query answering — the primary
//! contribution of *Schema Mappings for Data Graphs* (Francis & Libkin,
//! PODS 2017), §4–§8.
//!
//! A graph schema mapping ([`Gsm`]) is a set of RPQ pairs `(q, q')`; a
//! target graph `G_t` is a *solution* for a source `G_s` when
//! `q(G_s) ⊆ q'(G_t)` for every rule. Query answering is by *certain
//! answers*: `certain(Q, G_s) = ⋂ {Q(G_t) | G_t solution}`.
//!
//! The paper's map of this problem, and where each result lives here:
//!
//! | Result | Statement | Module |
//! |--------|-----------|--------|
//! | Thm 1 | undecidable for LAV/GAV relational/reachability mappings + equality RPQs | gadget in `gde-reductions` |
//! | Thm 2 / Prop 2 | coNP for relational mappings, all data RPQs | [`exact`] (complete enumeration) |
//! | Prop 3 | coNP-hard already for data path queries (3 inequalities) | gadget in `gde-reductions` |
//! | Prop 5 | data path queries decidable for arbitrary GSMs | [`arbitrary`] |
//! | Thm 3/4 | PTime via universal solutions with SQL nulls | [`solution`], [`certain`] |
//! | Thm 5 / Cor 1 | PTime for REM=/REE= via least informative solutions | [`solution`], [`certain`] |
//! | Prop 1 | relational GSMs ≡ relational mappings over `D_G` | [`translate`] |
//!
//! [`integration`] exposes the LAV virtual-data-integration reading of §4.
//!
//! ## Serving: the owned `MappingService` engine
//!
//! The tractable engines all follow one recipe: build a canonical solution
//! once, then answer queries by direct evaluation on it. The primary way to
//! consume that recipe is the owned, concurrent serving engine
//! [`engine::MappingService`]:
//!
//! * **register** a mapping with its source graph (`Arc`-shared, never
//!   copied) and get a [`engine::MappingId`];
//! * **answer** precompiled [`gde_dataquery::CompiledQuery`]s through the
//!   single entry point [`engine::MappingService::answer`], picking the
//!   engine per call with [`engine::Semantics`] (`Nulls`,
//!   `LeastInformative`, `Exact` — each in tuple or Boolean [`engine::Mode`]);
//! * **apply deltas** to the owned source
//!   ([`engine::MappingService::apply_delta`]): under LAV mappings, added
//!   edges patch the cached solutions in place and bounded removals
//!   delete the matching fresh paths; everything else invalidates them
//!   under a generation stamp;
//! * **shard** a mapping into node-range stripes
//!   ([`engine::MappingService::set_shard_count`], taking a count or
//!   [`engine::ShardSpec::Auto`]): answers evaluate per stripe into
//!   sorted runs that union through a streaming k-way merge (Boolean
//!   answers OR with a short-circuit), batches schedule
//!   `(query, stripe)` tasks, and deltas invalidate per stripe — answers
//!   are byte-identical at every K, `Auto` included. Per-(query, stripe)
//!   serving statistics ([`engine::ServingStats`], via
//!   [`engine::MappingService::serving_stats`]) feed the `Auto` pick;
//! * cached solutions live under a byte budget with least-recently-served
//!   **eviction**, and the service is `Send + Sync`, so scoped threads
//!   serve one instance concurrently;
//! * serving is **fault-isolated**: a panicking stripe worker is
//!   contained and quarantines only its mapping (retried once against a
//!   rebuild), per-call [`engine::ServeOptions`] impose cooperative
//!   deadlines and cancellation with typed errors, admission control
//!   degrades over-budget serves to uncached evaluation, and the seeded
//!   [`faults`] harness replays any failure deterministically.
//!
//! One-shot callers can use [`engine::answer_once`], which skips registry
//! and caches. The previous engines survive as thin deprecated wrappers:
//! [`engine::PreparedMapping`] (borrowing, per-`(M, G_s)`) and the
//! `certain_*` free functions in [`certain`] (cold path: rebuild solution
//! and re-lower the query per call). On the social serving workload a
//! prepared batch of ten queries answers several times faster than the
//! cold path (`prepared_vs_cold` bench, `BENCH_prepared.json`), and
//! delta-aware patching beats full re-preparation on the churn workload
//! (`service_churn` bench, `BENCH_service.json`).

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod analyze;
pub mod arbitrary;
pub mod certain;
pub mod engine;
pub mod exact;
pub mod faults;
pub mod gsm;
pub mod integration;
pub mod rel2graph;
pub mod solution;
pub mod translate;

pub use analyze::{
    analyze_mapping, analyze_mapping_with, pruned_gsm, statically_empty, Diagnostic, MappingFacts,
    MappingReport, QueryVerdict, WorkloadProfile,
};
pub use arbitrary::{certain_answers_arbitrary, ArbitraryOptions};
#[allow(deprecated)]
pub use certain::{
    certain_answers_least_informative, certain_answers_nulls, certain_boolean_least_informative,
    certain_boolean_nulls,
};
pub use certain::{CertainAnswers, SolveError};
#[allow(deprecated)]
pub use engine::PreparedMapping;
pub use engine::{
    answer_once, Answer, DeltaReport, MappingId, MappingService, Mode, PreparedSolution, Semantics,
    ServeError, ServeOptions, ServiceStats, ServingStats, ShardSpec, StripeServingStats,
    TemplateId,
};
pub use exact::{certain_answers_exact, certain_boolean_exact, ExactOptions};
pub use gsm::{Gsm, MappingClass, Rule};
pub use rel2graph::{RelToGraphMapping, RelToGraphRule};
pub use solution::{least_informative_solution, universal_solution, CanonicalSolution, LavPatch};

/// Names used by virtually every program built on the library.
pub mod prelude {
    pub use crate::engine::{
        answer_once, Answer, MappingId, MappingService, Mode, Semantics, ServeError, ServeOptions,
        ShardSpec, TemplateId,
    };
    pub use crate::exact::{certain_answers_exact, ExactOptions};
    pub use crate::gsm::{Gsm, Rule};
    pub use crate::solution::universal_solution;
    pub use gde_datagraph::GraphDelta;
    pub use gde_dataquery::{canonicalize, CompiledQuery, DataQuery, PlanSkeleton, QueryTemplate};
}
