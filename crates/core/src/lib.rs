//! # gde-core
//!
//! Graph schema mappings and certain-answer query answering — the primary
//! contribution of *Schema Mappings for Data Graphs* (Francis & Libkin,
//! PODS 2017), §4–§8.
//!
//! A graph schema mapping ([`Gsm`]) is a set of RPQ pairs `(q, q')`; a
//! target graph `G_t` is a *solution* for a source `G_s` when
//! `q(G_s) ⊆ q'(G_t)` for every rule. Query answering is by *certain
//! answers*: `certain(Q, G_s) = ⋂ {Q(G_t) | G_t solution}`.
//!
//! The paper's map of this problem, and where each result lives here:
//!
//! | Result | Statement | Module |
//! |--------|-----------|--------|
//! | Thm 1 | undecidable for LAV/GAV relational/reachability mappings + equality RPQs | gadget in `gde-reductions` |
//! | Thm 2 / Prop 2 | coNP for relational mappings, all data RPQs | [`exact`] (complete enumeration) |
//! | Prop 3 | coNP-hard already for data path queries (3 inequalities) | gadget in `gde-reductions` |
//! | Prop 5 | data path queries decidable for arbitrary GSMs | [`arbitrary`] |
//! | Thm 3/4 | PTime via universal solutions with SQL nulls | [`solution`], [`certain`] |
//! | Thm 5 / Cor 1 | PTime for REM=/REE= via least informative solutions | [`solution`], [`certain`] |
//! | Prop 1 | relational GSMs ≡ relational mappings over `D_G` | [`translate`] |
//!
//! [`integration`] exposes the LAV virtual-data-integration reading of §4.
//!
//! ## Cold vs prepared serving
//!
//! The tractable engines all follow one recipe: build a canonical solution
//! once, then answer queries by direct evaluation on it. There are two ways
//! to consume that recipe:
//!
//! * **Cold** — the free functions ([`certain_answers_nulls`],
//!   [`certain_answers_least_informative`], [`certain_answers_exact`] and
//!   their Boolean variants) rebuild the solution, refreeze its graph and
//!   re-lower the query on *every call*. They are the right entry point for
//!   one-shot computations and remain the public contract for all existing
//!   call sites — each is now a thin wrapper over the engine below.
//! * **Prepared** — [`engine::PreparedMapping`] caches, per `(M, G_s)`, the
//!   universal and least-informative solutions *and* their frozen
//!   `GraphSnapshot`s (label-partitioned CSR adjacency, interned values,
//!   cached per-label relations), then serves any number of precompiled
//!   [`gde_dataquery::CompiledQuery`]s against them. On the social serving
//!   workload a batch of ten queries answers several times faster than the
//!   cold path (see the `prepared_vs_cold` bench and `BENCH_prepared.json`).

pub mod arbitrary;
pub mod certain;
pub mod engine;
pub mod exact;
pub mod gsm;
pub mod integration;
pub mod rel2graph;
pub mod solution;
pub mod translate;

pub use arbitrary::{certain_answers_arbitrary, ArbitraryOptions};
pub use certain::{
    certain_answers_least_informative, certain_answers_nulls, certain_boolean_least_informative,
    certain_boolean_nulls, SolveError,
};
pub use engine::{PreparedMapping, PreparedSolution};
pub use exact::{certain_answers_exact, certain_boolean_exact, ExactOptions};
pub use gsm::{Gsm, MappingClass, Rule};
pub use rel2graph::{RelToGraphMapping, RelToGraphRule};
pub use solution::{least_informative_solution, universal_solution, CanonicalSolution};

/// Names used by virtually every program built on the library.
pub mod prelude {
    pub use crate::certain::{certain_answers_nulls, certain_boolean_nulls};
    pub use crate::engine::PreparedMapping;
    pub use crate::exact::{certain_answers_exact, ExactOptions};
    pub use crate::gsm::{Gsm, Rule};
    pub use crate::solution::universal_solution;
    pub use gde_dataquery::{CompiledQuery, DataQuery};
}
