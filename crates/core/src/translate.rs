//! Proposition 1, executable: a relational GSM `M` acts on the relational
//! representations `D_G` exactly like the relational schema mapping
//! `M_rel`.
//!
//! For each rule `(q, w)` with `w = a₁…a_k`, `M_rel` contains the st-tgd
//!
//! ```text
//! ∀x,y  Q_i(x,y) → ∃z₁…z_{k-1}  E_{a₁}(x,z₁) ∧ … ∧ E_{a_k}(z_{k-1},y)
//! ```
//!
//! plus value-transfer tgds `Q_i(x,y) ∧ Nˢ(x,v) → Nᵗ(x,v)` (and for `y`),
//! the key egd `Nᵗ(x,v) ∧ Nᵗ(x,v') → v = v'`, and node-valuation target
//! tgds `E_a(x,y) → ∃v,v' Nᵗ(x,v) ∧ Nᵗ(y,v')`.
//!
//! As in the paper, the source query `q` "need not be conjunctive": we
//! materialize `q(G_s)` into an auxiliary source relation `Q_i` (the paper
//! keeps `q` abstract for the same reason). [`verify_prop1`] machine-checks
//! the proposition: chasing `M_rel` over `D_{G_s}` and decoding yields the
//! universal solution of the direct graph-side construction, up to
//! renaming of invented nodes.

use crate::gsm::Gsm;
use crate::solution::{universal_solution, SolutionError};
use gde_datagraph::{hom, DataGraph, FxHashMap, HomMode};
use gde_relational::{
    chase_st, chase_target, decode_graph, encode_graph, Atom, Egd, GraphSchema, Instance, RelId,
    RelSchema, Term, Tgd, ValueNullStyle,
};

/// The relational rendering of a relational GSM, specialised to a source
/// graph (source queries are materialised into `Q_i` relations).
#[derive(Clone, Debug)]
pub struct RelationalMapping {
    /// Source schema: `Nˢ`, `E_a` per source label, and one `Q_i` per rule.
    pub source_schema: RelSchema,
    /// Materialised source instance `D_{G_s}` plus the `Q_i` facts.
    pub source_instance: Instance,
    /// The target-side graph schema (`Nᵗ`, `E_a` per target label).
    pub target: GraphSchema,
    /// Source-to-target tgds.
    pub st_tgds: Vec<Tgd>,
    /// Target tgds (node valuation).
    pub target_tgds: Vec<Tgd>,
    /// Target egds (the node-value key).
    pub egds: Vec<Egd>,
}

/// Errors of the translation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TranslateError {
    /// Mapping not relational.
    NotRelational,
    /// A rule's target word is ε; the paper's translation needs at least one
    /// edge atom on the right-hand side.
    EpsilonTargetWord,
}

impl std::fmt::Display for TranslateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TranslateError::NotRelational => write!(f, "translation requires a relational GSM"),
            TranslateError::EpsilonTargetWord => {
                write!(f, "translation requires non-empty target words")
            }
        }
    }
}

impl std::error::Error for TranslateError {}

/// Build `M_rel` for `m` over the concrete source `gs`.
pub fn translate_to_relational(
    m: &Gsm,
    gs: &DataGraph,
) -> Result<RelationalMapping, TranslateError> {
    if !m.is_relational() {
        return Err(TranslateError::NotRelational);
    }
    // Source side: D_{G_s} extended with Q_i relations.
    let (src_graph_schema, mut source_instance) = {
        let (gsch, inst) = encode_graph(gs);
        (gsch, inst)
    };
    let mut source_schema = src_graph_schema.schema.clone();
    let source_n = src_graph_schema.node_rel;

    // We must rebuild the instance over the extended schema.
    let mut q_rels: Vec<RelId> = Vec::new();
    for i in 0..m.rules().len() {
        q_rels.push(source_schema.relation(&format!("Q_{i}"), 2));
    }
    let mut extended = Instance::new(source_schema.clone());
    for (rel, fact) in source_instance.all_facts() {
        let name = source_instance.schema().name(rel).to_string();
        let id = source_schema.lookup(&name).expect("copied relation");
        extended.insert(id, fact.to_vec());
    }
    for (i, rule) in m.rules().iter().enumerate() {
        for (u, v) in m.source_answers(rule, gs) {
            extended.insert(q_rels[i], vec![Term::Node(u), Term::Node(v)]);
        }
    }
    source_instance = extended;

    // Target side.
    let target = GraphSchema::for_alphabet(m.target_alphabet());
    let t_n = target.node_rel;

    // st-tgds.
    let mut st_tgds = Vec::new();
    for (i, rule) in m.rules().iter().enumerate() {
        let word = rule.target.as_word().expect("relational");
        if word.is_empty() {
            return Err(TranslateError::EpsilonTargetWord);
        }
        // vars: 0 = x, 1 = y, 2.. = z's
        let mut head = Vec::new();
        let k = word.len();
        for (j, &label) in word.iter().enumerate() {
            let from = if j == 0 { 0 } else { 1 + j as u32 };
            let to = if j + 1 == k { 1 } else { 2 + j as u32 };
            head.push(Atom::vars(target.edge_rels[label.index()], [from, to]));
        }
        st_tgds.push(Tgd {
            body: vec![Atom::vars(q_rels[i], [0, 1])],
            head,
        });
        // value transfer for both endpoints
        st_tgds.push(Tgd {
            body: vec![Atom::vars(q_rels[i], [0, 1]), Atom::vars(source_n, [0, 9])],
            head: vec![Atom::vars(t_n, [0, 9])],
        });
        st_tgds.push(Tgd {
            body: vec![Atom::vars(q_rels[i], [0, 1]), Atom::vars(source_n, [1, 9])],
            head: vec![Atom::vars(t_n, [1, 9])],
        });
    }

    // target tgds: every node of an edge has some value.
    let mut target_tgds = Vec::new();
    for &erel in &target.edge_rels {
        target_tgds.push(Tgd {
            body: vec![Atom::vars(erel, [0, 1])],
            head: vec![Atom::vars(t_n, [0, 2])],
        });
        target_tgds.push(Tgd {
            body: vec![Atom::vars(erel, [0, 1])],
            head: vec![Atom::vars(t_n, [1, 2])],
        });
    }

    // key egd: node ids determine values.
    let egds = vec![Egd {
        body: vec![Atom::vars(t_n, [0, 1]), Atom::vars(t_n, [0, 2])],
        equalities: vec![(1, 2)],
    }];

    Ok(RelationalMapping {
        source_schema,
        source_instance,
        target,
        st_tgds,
        target_tgds,
        egds,
    })
}

/// Chase `M_rel` to its canonical universal solution (st chase, then node
/// valuation, then the key egd).
pub fn chase_universal(rm: &RelationalMapping) -> Result<Instance, gde_relational::ChaseError> {
    let mut target = chase_st(&rm.source_instance, &rm.st_tgds, rm.target.schema.clone());
    chase_target(&mut target, &rm.target_tgds, 1000)?;
    gde_relational::chase::chase_egds(&mut target, &rm.egds)?;
    Ok(target)
}

/// Machine-check Proposition 1 on one scenario: the chased relational
/// solution, decoded as a graph with SQL-null values, is isomorphic (over a
/// fixed `dom(M, G_s)`) to the direct universal solution.
pub fn verify_prop1(m: &Gsm, gs: &DataGraph) -> Result<bool, TranslateError> {
    let rm = translate_to_relational(m, gs)?;
    let chased = chase_universal(&rm).map_err(|_| TranslateError::NotRelational)?;
    let decoded = decode_graph(
        &chased,
        m.target_alphabet(),
        ValueNullStyle::SqlNull,
        gs.fresh_id_watermark(),
    )
    .map_err(|_| TranslateError::NotRelational)?;
    let direct = match universal_solution(m, gs) {
        Ok(s) => s,
        Err(SolutionError::NotRelational) => return Err(TranslateError::NotRelational),
        Err(SolutionError::NoSolution { .. }) => return Err(TranslateError::EpsilonTargetWord),
    };
    // same sizes + homs both ways fixing dom ⇒ isomorphic for these shapes
    if decoded.node_count() != direct.graph.node_count()
        || decoded.edge_count() != direct.graph.edge_count()
    {
        return Ok(false);
    }
    let fixed: Vec<_> = direct.dom_nodes().into_iter().map(|n| (n, n)).collect();
    let fwd = hom::find_hom(&direct.graph, &decoded, &fixed, HomMode::Exact);
    let bwd = hom::find_hom(&decoded, &direct.graph, &fixed, HomMode::Exact);
    // Exact-mode homs treat Null values as equal-to-Null only, which is what
    // we want: null nodes must map to null nodes.
    let _: Option<&FxHashMap<_, _>> = fwd.as_ref();
    Ok(fwd.is_some() && bwd.is_some())
}

#[cfg(test)]
mod tests {
    use super::*;
    use gde_automata::parse_regex;
    use gde_datagraph::{Alphabet, NodeId, Value};

    fn scenario() -> (Gsm, DataGraph) {
        let mut sa = Alphabet::from_labels(["a", "b"]);
        let mut ta = Alphabet::from_labels(["x", "y"]);
        let mut m = Gsm::new(sa.clone(), ta.clone());
        m.add_rule(
            parse_regex("a", &mut sa).unwrap(),
            parse_regex("x y", &mut ta).unwrap(),
        );
        m.add_rule(
            parse_regex("b+", &mut sa).unwrap(),
            parse_regex("y", &mut ta).unwrap(),
        );
        let mut gs = DataGraph::new();
        gs.add_node(NodeId(0), Value::int(10)).unwrap();
        gs.add_node(NodeId(1), Value::int(20)).unwrap();
        gs.add_node(NodeId(2), Value::int(30)).unwrap();
        gs.add_edge_str(NodeId(0), "a", NodeId(1)).unwrap();
        gs.add_edge_str(NodeId(1), "b", NodeId(2)).unwrap();
        gs.add_edge_str(NodeId(2), "b", NodeId(0)).unwrap();
        (m, gs)
    }

    #[test]
    fn translation_shape() {
        let (m, gs) = scenario();
        let rm = translate_to_relational(&m, &gs).unwrap();
        // 3 tgds per rule
        assert_eq!(rm.st_tgds.len(), 6);
        assert_eq!(rm.egds.len(), 1);
        // Q_0 holds the single a-edge; Q_1 holds b+ pairs (3 on the cycle? b
        // edges 1→2→0 so b+ pairs: (1,2),(2,0),(1,0))
        let q0 = rm.source_schema.lookup("Q_0").unwrap();
        let q1 = rm.source_schema.lookup("Q_1").unwrap();
        assert_eq!(rm.source_instance.fact_count(q0), 1);
        assert_eq!(rm.source_instance.fact_count(q1), 3);
    }

    #[test]
    fn chase_satisfies_all_dependencies() {
        let (m, gs) = scenario();
        let rm = translate_to_relational(&m, &gs).unwrap();
        let chased = chase_universal(&rm).unwrap();
        for tgd in &rm.st_tgds {
            assert!(tgd.is_satisfied(&rm.source_instance, &chased));
        }
        for tgd in &rm.target_tgds {
            assert!(tgd.is_satisfied(&chased, &chased));
        }
        for egd in &rm.egds {
            assert!(egd.is_satisfied(&chased));
        }
    }

    #[test]
    fn prop1_holds_on_scenarios() {
        let (m, gs) = scenario();
        assert!(verify_prop1(&m, &gs).unwrap());
    }

    #[test]
    fn prop1_on_gav_mapping() {
        let mut sa = Alphabet::from_labels(["a"]);
        let mut ta = Alphabet::from_labels(["x"]);
        let mut m = Gsm::new(sa.clone(), ta.clone());
        m.add_rule(
            parse_regex("a a", &mut sa).unwrap(),
            parse_regex("x", &mut ta).unwrap(),
        );
        let mut gs = DataGraph::new();
        for i in 0..4 {
            gs.add_node(NodeId(i), Value::int(i as i64)).unwrap();
        }
        for i in 0..3 {
            gs.add_edge_str(NodeId(i), "a", NodeId(i + 1)).unwrap();
        }
        assert!(verify_prop1(&m, &gs).unwrap());
    }

    #[test]
    fn epsilon_word_rejected() {
        let mut sa = Alphabet::from_labels(["a"]);
        let ta = Alphabet::from_labels(["x"]);
        let mut m = Gsm::new(sa.clone(), ta);
        m.add_rule(
            parse_regex("a", &mut sa).unwrap(),
            gde_automata::Regex::Epsilon,
        );
        let mut gs = DataGraph::new();
        gs.add_node(NodeId(0), Value::int(1)).unwrap();
        gs.add_edge_str(NodeId(0), "a", NodeId(0)).unwrap();
        assert_eq!(
            translate_to_relational(&m, &gs).err(),
            Some(TranslateError::EpsilonTargetWord)
        );
    }

    #[test]
    fn non_relational_rejected() {
        let (m, gs) = scenario();
        let mut m2 = m;
        let reach = gde_automata::Regex::reachability(m2.target_alphabet());
        m2.add_rule(
            gde_automata::Regex::Atom(m2.source_alphabet().label("a").unwrap()),
            reach,
        );
        assert_eq!(
            translate_to_relational(&m2, &gs).err(),
            Some(TranslateError::NotRelational)
        );
    }
}
