//! Relational-to-graph schema mappings — the direction the paper's
//! conclusions (§10) point to, after \[11\] (Boneva–Bonifati–Ciucanu):
//! exchanging a *relational* source database into a *graph* target.
//!
//! A rule pairs a conjunctive query with a binary, node-valued head over
//! the relational source with a target word: for every body match, the two
//! head nodes must be connected by a `w`-labelled path in the target data
//! graph. This is the natural relational analogue of the paper's
//! relational GSMs, and all the §7 machinery transfers: a universal
//! solution with SQL-null invented nodes computes certain answers for
//! hom-closed data RPQs.
//!
//! Node values: sources in the `D_G` style carry an `N(node, value)`
//! relation; [`RelToGraphMapping::universal_solution`] reads exported
//! nodes' values from it (nodes without an `N`-fact get the null value,
//! and conflicting `N`-facts are an error, mirroring the key egd).

use crate::certain::{CertainAnswers, SolveError};
use crate::solution::CanonicalSolution;
use gde_datagraph::{Alphabet, DataGraph, FxHashSet, Label, NodeId, Value};
use gde_dataquery::DataQuery;
use gde_relational::{ConjunctiveQuery, Instance, RelId, Term};

/// One relational-to-graph rule: `q(x, y) → path_w(x, y)`.
#[derive(Clone, Debug)]
pub struct RelToGraphRule {
    /// A CQ over the source schema with exactly two head variables, both of
    /// which must bind to node terms.
    pub query: ConjunctiveQuery,
    /// The target word `w = a₁…a_k` (non-empty).
    pub word: Vec<Label>,
}

/// A relational-to-graph mapping.
#[derive(Clone, Debug)]
pub struct RelToGraphMapping {
    target_alphabet: Alphabet,
    node_rel: Option<RelId>,
    rules: Vec<RelToGraphRule>,
}

/// Errors of the relational-to-graph engine.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RelToGraphError {
    /// A rule's head does not have exactly two variables.
    BadHeadArity,
    /// A rule's target word is empty.
    EmptyWord,
    /// A head variable bound to a non-node term.
    NonNodeHead,
    /// Two `N`-facts assign different values to one node.
    ValueConflict(NodeId),
}

impl std::fmt::Display for RelToGraphError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RelToGraphError::BadHeadArity => write!(f, "rule head must be binary"),
            RelToGraphError::EmptyWord => write!(f, "rule target word must be non-empty"),
            RelToGraphError::NonNodeHead => write!(f, "head variables must bind node terms"),
            RelToGraphError::ValueConflict(n) => write!(f, "conflicting values for node {n}"),
        }
    }
}

impl std::error::Error for RelToGraphError {}

impl RelToGraphMapping {
    /// New mapping into the given target alphabet; `node_rel` is the
    /// source's `N(node, value)` relation, if it has one.
    pub fn new(target_alphabet: Alphabet, node_rel: Option<RelId>) -> RelToGraphMapping {
        RelToGraphMapping {
            target_alphabet,
            node_rel,
            rules: Vec::new(),
        }
    }

    /// Add a rule.
    pub fn add_rule(
        &mut self,
        query: ConjunctiveQuery,
        word: Vec<Label>,
    ) -> Result<&mut Self, RelToGraphError> {
        if query.head.len() != 2 {
            return Err(RelToGraphError::BadHeadArity);
        }
        if word.is_empty() {
            return Err(RelToGraphError::EmptyWord);
        }
        self.rules.push(RelToGraphRule { query, word });
        Ok(self)
    }

    /// The rules.
    pub fn rules(&self) -> &[RelToGraphRule] {
        &self.rules
    }

    /// The target alphabet.
    pub fn target_alphabet(&self) -> &Alphabet {
        &self.target_alphabet
    }

    /// Answer pairs of a rule's CQ over a source instance, as node ids.
    fn rule_pairs(
        &self,
        rule: &RelToGraphRule,
        src: &Instance,
    ) -> Result<Vec<(NodeId, NodeId)>, RelToGraphError> {
        let mut out = Vec::new();
        for tuple in rule.query.eval(src) {
            match (&tuple[0], &tuple[1]) {
                (Term::Node(u), Term::Node(v)) => out.push((*u, *v)),
                _ => return Err(RelToGraphError::NonNodeHead),
            }
        }
        out.sort();
        out.dedup();
        Ok(out)
    }

    /// Node values exported from the source's `N` relation.
    fn node_value(&self, src: &Instance, node: NodeId) -> Result<Value, RelToGraphError> {
        let Some(nrel) = self.node_rel else {
            return Ok(Value::Null);
        };
        let mut found: Option<Value> = None;
        for fact in src.facts(nrel) {
            if fact[0] == Term::Node(node) {
                let v = match &fact[1] {
                    Term::Val(v) => v.clone(),
                    Term::Null(_) => Value::Null,
                    Term::Node(_) => return Err(RelToGraphError::NonNodeHead),
                };
                match &found {
                    None => found = Some(v),
                    Some(existing) if *existing == v => {}
                    Some(_) => return Err(RelToGraphError::ValueConflict(node)),
                }
            }
        }
        Ok(found.unwrap_or(Value::Null))
    }

    /// Build the universal solution: exported nodes with their `N`-values,
    /// plus one fresh null-node path per rule match.
    pub fn universal_solution(&self, src: &Instance) -> Result<CanonicalSolution, RelToGraphError> {
        let mut gt = DataGraph::with_alphabet(self.target_alphabet.clone());
        // watermark above every node id mentioned anywhere in the source
        let mut watermark = 0u32;
        for (_, fact) in src.all_facts() {
            for t in fact {
                if let Term::Node(n) = t {
                    watermark = watermark.max(n.0 + 1);
                }
            }
        }
        gt.reserve_ids(watermark);

        let mut invented = Vec::new();
        for rule in &self.rules {
            for (u, v) in self.rule_pairs(rule, src)? {
                for id in [u, v] {
                    if !gt.has_node(id) {
                        let val = self.node_value(src, id)?;
                        gt.add_node(id, val).expect("fresh");
                    }
                }
                let mut cur = u;
                for (i, &label) in rule.word.iter().enumerate() {
                    let next = if i + 1 == rule.word.len() {
                        v
                    } else {
                        let id = gt.fresh_node(Value::Null);
                        invented.push(id);
                        id
                    };
                    gt.add_edge(cur, label, next).expect("nodes exist");
                    cur = next;
                }
            }
        }
        Ok(CanonicalSolution::new(gt, invented))
    }

    /// Is `gt` a solution for `src`? (Every rule match connected by its
    /// word, with matching node values where `N` defines them.)
    pub fn is_solution(&self, src: &Instance, gt: &DataGraph) -> Result<bool, RelToGraphError> {
        for rule in &self.rules {
            for (u, v) in self.rule_pairs(rule, src)? {
                for id in [u, v] {
                    let expected = self.node_value(src, id)?;
                    match gt.value(id) {
                        Some(actual) if !expected.is_null() && *actual != expected => {
                            return Ok(false)
                        }
                        Some(_) => {}
                        None => return Ok(false),
                    }
                }
                if !gde_datagraph::path::word_reachable(gt, u, &rule.word).contains(&v) {
                    return Ok(false);
                }
            }
        }
        Ok(true)
    }

    /// Certain answers `2ⁿ` for hom-closed data RPQs, via the universal
    /// solution (the §7 method, verbatim).
    pub fn certain_answers_nulls(
        &self,
        q: &DataQuery,
        src: &Instance,
    ) -> Result<CertainAnswers, RelToGraphError> {
        let sol = self.universal_solution(src)?;
        let invented: FxHashSet<NodeId> = sol.invented.iter().copied().collect();
        let mut pairs: Vec<(NodeId, NodeId)> = q
            .eval_pairs(&sol.graph)
            .into_iter()
            .filter(|(u, v)| !invented.contains(u) && !invented.contains(v))
            .collect();
        pairs.sort();
        Ok(CertainAnswers::Pairs(pairs))
    }
}

/// Convenience conversion error wrapper so the engines line up in calling
/// code.
impl From<RelToGraphError> for SolveError {
    fn from(_: RelToGraphError) -> SolveError {
        SolveError::UnsupportedQuery("relational-to-graph rule error")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gde_relational::{Atom, RelSchema};

    fn node(i: u32) -> Term {
        Term::Node(NodeId(i))
    }

    /// Source: N(node, name), WorksWith(x, y) — a relational HR database.
    fn source() -> (Instance, RelId, RelId) {
        let mut sch = RelSchema::new();
        let n = sch.relation("N", 2);
        let w = sch.relation("WorksWith", 2);
        let mut db = Instance::new(sch);
        for (i, name) in [(0, "ann"), (1, "bob"), (2, "ann")] {
            db.insert(n, vec![node(i), Term::Val(Value::str(name))]);
        }
        db.insert(w, vec![node(0), node(1)]);
        db.insert(w, vec![node(1), node(2)]);
        db.insert(w, vec![node(1), node(0)]);
        (db, n, w)
    }

    fn mapping(n: RelId, w: RelId) -> (RelToGraphMapping, Alphabet) {
        let ta = Alphabet::from_labels(["collab", "via"]);
        let mut m = RelToGraphMapping::new(ta.clone(), Some(n));
        // mutual colleagues become a collab·via path
        m.add_rule(
            ConjunctiveQuery {
                head: vec![0, 1],
                atoms: vec![Atom::vars(w, [0, 1]), Atom::vars(w, [1, 0])],
            },
            vec![ta.label("collab").unwrap(), ta.label("via").unwrap()],
        )
        .unwrap();
        // plain colleagues get a single collab edge
        m.add_rule(
            ConjunctiveQuery {
                head: vec![0, 1],
                atoms: vec![Atom::vars(w, [0, 1])],
            },
            vec![ta.label("collab").unwrap()],
        )
        .unwrap();
        (m, ta)
    }

    #[test]
    fn universal_solution_shape() {
        let (db, n, w) = source();
        let (m, _) = mapping(n, w);
        let sol = m.universal_solution(&db).unwrap();
        // mutual pairs: (0,1) and (1,0) → two invented middles
        assert_eq!(sol.invented.len(), 2);
        // exported nodes carry their N-values
        assert_eq!(sol.graph.value(NodeId(0)), Some(&Value::str("ann")));
        assert_eq!(sol.graph.value(NodeId(1)), Some(&Value::str("bob")));
        assert!(m.is_solution(&db, &sol.graph).unwrap());
    }

    #[test]
    fn certain_answers_over_the_graph_target() {
        let (db, n, w) = source();
        let (m, mut ta) = mapping(n, w);
        // same-name colleagues two hops apart: 0(ann) collab 1 collab 2(ann)
        let q: DataQuery = gde_dataquery::parse_ree("(collab collab)=", &mut ta)
            .unwrap()
            .into();
        let ans = m.certain_answers_nulls(&q, &db).unwrap().into_pairs();
        // includes the round-trips 0→1→0 and 1→0→1 (equal endpoints,
        // trivially) alongside the interesting ann→ann pair 0→2
        assert_eq!(
            ans,
            vec![
                (NodeId(0), NodeId(0)),
                (NodeId(0), NodeId(2)),
                (NodeId(1), NodeId(1))
            ]
        );
        // paths through invented middles never produce certain pairs
        let q: DataQuery = gde_dataquery::parse_ree("via", &mut ta).unwrap().into();
        assert!(m
            .certain_answers_nulls(&q, &db)
            .unwrap()
            .into_pairs()
            .is_empty());
    }

    #[test]
    fn bad_rules_rejected() {
        let (_, n, w) = source();
        let ta = Alphabet::from_labels(["collab"]);
        let mut m = RelToGraphMapping::new(ta.clone(), Some(n));
        let unary = ConjunctiveQuery {
            head: vec![0],
            atoms: vec![Atom::vars(w, [0, 1])],
        };
        assert_eq!(
            m.add_rule(unary, vec![ta.label("collab").unwrap()])
                .err()
                .map(|e| e.to_string()),
            Some("rule head must be binary".to_string())
        );
        let binary = ConjunctiveQuery {
            head: vec![0, 1],
            atoms: vec![Atom::vars(w, [0, 1])],
        };
        assert!(matches!(
            m.add_rule(binary, vec![]),
            Err(RelToGraphError::EmptyWord)
        ));
    }

    #[test]
    fn head_binding_values_rejected() {
        let (db, n, _) = source();
        let ta = Alphabet::from_labels(["x"]);
        let mut m = RelToGraphMapping::new(ta.clone(), Some(n));
        // head variable 1 ranges over the VALUE column of N
        m.add_rule(
            ConjunctiveQuery {
                head: vec![0, 1],
                atoms: vec![Atom::vars(n, [0, 1])],
            },
            vec![ta.label("x").unwrap()],
        )
        .unwrap();
        assert_eq!(
            m.universal_solution(&db).err(),
            Some(RelToGraphError::NonNodeHead)
        );
    }

    #[test]
    fn value_conflicts_detected() {
        let (mut db, n, w) = source();
        db.insert(n, vec![node(0), Term::Val(Value::str("imposter"))]);
        let (m, _) = mapping(n, w);
        assert_eq!(
            m.universal_solution(&db).err(),
            Some(RelToGraphError::ValueConflict(NodeId(0)))
        );
    }

    #[test]
    fn nodes_without_n_facts_get_nulls() {
        let mut sch = RelSchema::new();
        let w = sch.relation("W", 2);
        let mut db = Instance::new(sch);
        db.insert(w, vec![node(0), node(1)]);
        let ta = Alphabet::from_labels(["x"]);
        let mut m = RelToGraphMapping::new(ta.clone(), None);
        m.add_rule(
            ConjunctiveQuery {
                head: vec![0, 1],
                atoms: vec![Atom::vars(w, [0, 1])],
            },
            vec![ta.label("x").unwrap()],
        )
        .unwrap();
        let sol = m.universal_solution(&db).unwrap();
        assert!(sol.graph.value(NodeId(0)).unwrap().is_null());
        assert!(m.is_solution(&db, &sol.graph).unwrap());
    }
}
