//! Certain answers under *arbitrary* (non-relational) GSMs, via bounded
//! skeleton enumeration — the implementable content of Propositions 5 and 7.
//!
//! For a rule `(q, q')` with a non-word target, a solution must connect each
//! source pair by *some* path with label in `L(q')`. The adversary
//! (minimizing query truth) therefore chooses, per rule and per source pair,
//! a word of `L(q')` — and then data values for the invented nodes. Three
//! observations make this searchable:
//!
//! 1. **Fresh-path skeletons dominate.** Identifying invented nodes with
//!    each other or with existing nodes yields a homomorphic image, which
//!    (for hom-closed queries) can only *gain* answers; the adversary never
//!    benefits. So it suffices to intersect over skeletons with one fresh
//!    path per (rule, pair).
//! 2. **Long words are opaque to short queries.** A data path query `Q`
//!    traverses an inserted fresh path completely or not at all; if the path
//!    is longer than `|Q|`, not at all. Hence all words longer than `|Q|`
//!    are interchangeable: we enumerate `L(q') ∩ Σ^{≤|Q|}` plus one
//!    canonical longer word (when one exists). This is the "cutting"
//!    argument in the paper's proof sketch of Proposition 5 and makes the
//!    engine **exact for data path queries** (and any iteration-free REE).
//! 3. For queries *with* iteration (`⁺`/`*`), matches can cross arbitrarily
//!    long inserted paths, so the cutoff makes the result an
//!    **overapproximation** of the certain answers (the solution pool is a
//!    subset of all solutions). The paper's Proposition 7 shows the exact
//!    bound needs Ramsey-size models; we expose the bounded engine instead
//!    and flag the approximation in [`ArbitraryOutcome`].

use crate::certain::CertainAnswers;
use crate::exact::{intersect_over_patterns, ExactError, ExactOptions};
use crate::gsm::Gsm;
use gde_automata::Nfa;
use gde_datagraph::{DataGraph, FxHashSet, Label, NodeId, Value};
use gde_dataquery::DataQuery;

/// Bounds for the arbitrary-mapping engine.
#[derive(Copy, Clone, Debug)]
pub struct ArbitraryOptions {
    /// Enumerate target words up to this length (defaults to the query's
    /// path length for data path queries).
    pub max_word_len: usize,
    /// Cap on enumerated words per rule.
    pub max_words_per_rule: usize,
    /// Cap on the number of skeletons (choice functions).
    pub max_skeletons: u64,
    /// Budget for the per-skeleton valuation-pattern search.
    pub exact: ExactOptions,
}

impl Default for ArbitraryOptions {
    fn default() -> ArbitraryOptions {
        ArbitraryOptions {
            max_word_len: 4,
            max_words_per_rule: 64,
            max_skeletons: 10_000,
            exact: ExactOptions::default(),
        }
    }
}

/// Result of the bounded engine, flagging exactness.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ArbitraryOutcome {
    /// The computed answers.
    pub answers: CertainAnswers,
    /// True when the result is provably the exact certain answers (query
    /// iteration-free and cutoff ≥ query length); otherwise the result is an
    /// overapproximation (every reported pair might still be spoiled by a
    /// solution outside the bounded pool).
    pub exact: bool,
}

/// Errors from the bounded engine.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ArbitraryError {
    /// A search bound was exceeded.
    TooComplex(String),
}

impl std::fmt::Display for ArbitraryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ArbitraryError::TooComplex(s) => write!(f, "bounded search exceeded: {s}"),
        }
    }
}

impl std::error::Error for ArbitraryError {}

impl From<ExactError> for ArbitraryError {
    fn from(e: ExactError) -> ArbitraryError {
        ArbitraryError::TooComplex(e.to_string())
    }
}

/// Is the cutoff sufficient for exactness on this query?
fn cutoff_exact_for(q: &DataQuery, k: usize) -> bool {
    match q {
        DataQuery::PathTest(p) => p.len() <= k,
        DataQuery::Ree(e) => e.is_iteration_free() && ree_len_at_most(e, k),
        _ => false,
    }
}

fn ree_len_at_most(e: &gde_dataquery::Ree, k: usize) -> bool {
    use gde_dataquery::Ree;
    fn max_len(e: &Ree) -> Option<usize> {
        match e {
            Ree::Epsilon => Some(0),
            Ree::Atom(_) => Some(1),
            Ree::Concat(es) => es.iter().map(max_len).try_fold(0usize, |a, b| Some(a + b?)),
            Ree::Union(es) => es
                .iter()
                .map(max_len)
                .try_fold(0usize, |a, b| Some(a.max(b?))),
            Ree::Plus(_) | Ree::Star(_) => None,
            Ree::Eq(e) | Ree::Neq(e) => max_len(e),
        }
    }
    max_len(e).is_some_and(|l| l <= k)
}

/// Certain answers under an arbitrary GSM (see module docs for exactness).
pub fn certain_answers_arbitrary(
    m: &Gsm,
    q: &DataQuery,
    gs: &DataGraph,
    opts: ArbitraryOptions,
) -> Result<ArbitraryOutcome, ArbitraryError> {
    let k = opts.max_word_len;
    let exact = cutoff_exact_for(q, k);

    // Per rule: the source pairs and the word choices.
    struct PairChoices {
        pair: (NodeId, NodeId),
        words: Vec<Vec<Label>>,
    }
    let mut slots: Vec<PairChoices> = Vec::new();
    for rule in m.rules() {
        let pairs = m.source_answers(rule, gs);
        if pairs.is_empty() {
            continue;
        }
        let nfa = Nfa::from_regex(&rule.target);
        let mut words = nfa.words_up_to(k, opts.max_words_per_rule + 1);
        if words.len() > opts.max_words_per_rule {
            return Err(ArbitraryError::TooComplex(format!(
                "more than {} words of length ≤ {k} in a rule target",
                opts.max_words_per_rule
            )));
        }
        words.sort();
        if let Some(long) = nfa.some_word_longer_than(k) {
            words.push(long);
        }
        for pair in pairs {
            let mut ws = words.clone();
            // ε connects a pair only when its endpoints coincide
            if pair.0 != pair.1 {
                ws.retain(|w| !w.is_empty());
            }
            if ws.is_empty() {
                // this pair cannot be satisfied at all: no solution exists
                return Ok(ArbitraryOutcome {
                    answers: CertainAnswers::AllVacuously,
                    exact: true,
                });
            }
            slots.push(PairChoices { pair, words: ws });
        }
    }

    // Count skeletons.
    let mut total: u128 = 1;
    for s in &slots {
        total = total.saturating_mul(s.words.len() as u128);
        if total > opts.max_skeletons as u128 {
            return Err(ArbitraryError::TooComplex(format!(
                "more than {} skeletons",
                opts.max_skeletons
            )));
        }
    }

    // Base target graph: dom nodes with values.
    let dom_nodes = m.dom(gs);
    let dom: FxHashSet<NodeId> = dom_nodes.iter().copied().collect();
    let mut base = DataGraph::with_alphabet(m.target_alphabet().clone());
    base.reserve_ids(gs.fresh_id_watermark());
    for &id in &dom_nodes {
        base.add_node(id, gs.value(id).expect("dom node").clone())
            .expect("distinct");
    }

    // Iterate the cartesian product of word choices.
    let mut indices = vec![0usize; slots.len()];
    let mut candidates: Option<Vec<(NodeId, NodeId)>> = None;
    let mut patterns_tried: u64 = 0;
    loop {
        // build skeleton for this choice
        let mut g = base.clone();
        let mut free_invented: Vec<NodeId> = Vec::new();
        let mut opaque_counter = 0u64;
        for (slot, &wi) in slots.iter().zip(indices.iter()) {
            let w = &slot.words[wi];
            let (u, v) = slot.pair;
            let mut cur = u;
            let opaque = w.len() > k;
            for (i, &label) in w.iter().enumerate() {
                let next = if i + 1 == w.len() {
                    v
                } else if opaque {
                    opaque_counter += 1;
                    g.fresh_node(Value::str(format!("‡opaque{opaque_counter}")))
                } else {
                    let id = g.fresh_node(Value::Null);
                    free_invented.push(id);
                    id
                };
                g.add_edge(cur, label, next).expect("nodes exist");
                cur = next;
            }
        }
        candidates = intersect_over_patterns(
            &mut g,
            &free_invented,
            q,
            Some(&dom),
            candidates,
            opts.exact,
            &mut patterns_tried,
        )?;
        if matches!(&candidates, Some(c) if c.is_empty()) {
            break;
        }
        // next choice
        let mut i = 0;
        loop {
            if i == indices.len() {
                // done
                return Ok(ArbitraryOutcome {
                    answers: CertainAnswers::Pairs(candidates.unwrap_or_default()),
                    exact,
                });
            }
            indices[i] += 1;
            if indices[i] < slots[i].words.len() {
                break;
            }
            indices[i] = 0;
            i += 1;
        }
    }
    Ok(ArbitraryOutcome {
        answers: CertainAnswers::Pairs(candidates.unwrap_or_default()),
        exact,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use gde_automata::{parse_regex, Regex};
    use gde_datagraph::Alphabet;
    use gde_dataquery::{parse_ree, PathTest};

    /// Source 0(v5) -a-> 1(v5); rule (a, x (y|z)): adversary picks y or z.
    fn scenario_choice() -> (Gsm, DataGraph) {
        let mut sa = Alphabet::from_labels(["a"]);
        let mut ta = Alphabet::from_labels(["x", "y", "z"]);
        let mut m = Gsm::new(sa.clone(), ta.clone());
        m.add_rule(
            parse_regex("a", &mut sa).unwrap(),
            parse_regex("x (y | z)", &mut ta).unwrap(),
        );
        let mut gs = DataGraph::new();
        gs.add_node(NodeId(0), Value::int(5)).unwrap();
        gs.add_node(NodeId(1), Value::int(5)).unwrap();
        gs.add_edge_str(NodeId(0), "a", NodeId(1)).unwrap();
        (m, gs)
    }

    #[test]
    fn adversary_chooses_the_bad_branch() {
        let (m, gs) = scenario_choice();
        let mut ta = m.target_alphabet().clone();
        // Q = x y : adversary picks z instead — not certain
        let q: DataQuery = parse_ree("x y", &mut ta).unwrap().into();
        let out = certain_answers_arbitrary(&m, &q, &gs, ArbitraryOptions::default()).unwrap();
        assert_eq!(out.answers, CertainAnswers::Pairs(vec![]));
        // Q = x (y|z): certain
        let q: DataQuery = parse_ree("x y | x z", &mut ta).unwrap().into();
        let out = certain_answers_arbitrary(&m, &q, &gs, ArbitraryOptions::default()).unwrap();
        assert_eq!(
            out.answers,
            CertainAnswers::Pairs(vec![(NodeId(0), NodeId(1))])
        );
    }

    #[test]
    fn agrees_with_exact_engine_on_relational_mappings() {
        let mut sa = Alphabet::from_labels(["a"]);
        let mut ta = Alphabet::from_labels(["x", "y"]);
        let mut m = Gsm::new(sa.clone(), ta.clone());
        m.add_rule(
            parse_regex("a", &mut sa).unwrap(),
            parse_regex("x y", &mut ta).unwrap(),
        );
        let mut gs = DataGraph::new();
        gs.add_node(NodeId(0), Value::int(5)).unwrap();
        gs.add_node(NodeId(1), Value::int(5)).unwrap();
        gs.add_edge_str(NodeId(0), "a", NodeId(1)).unwrap();
        let mut ta2 = ta.clone();
        for src in ["x y", "(x y)=", "(x y)!=", "(x= y) | (x!= y)"] {
            let q: DataQuery = parse_ree(src, &mut ta2).unwrap().into();
            let a1 = certain_answers_arbitrary(&m, &q, &gs, ArbitraryOptions::default())
                .unwrap()
                .answers;
            let a2 =
                crate::exact::certain_answers_exact(&m, &q, &gs, ExactOptions::default()).unwrap();
            assert_eq!(a1, a2, "for {src}");
        }
    }

    #[test]
    fn reachability_rule_long_paths_defeat_short_queries() {
        // rule (a, x+): adversary can insert an arbitrarily long x-chain, so
        // Q = "x" (single step) is not certain; Q = x+ is (as an RPQ,
        // navigational) — but x+ has iteration so result is flagged inexact.
        let mut sa = Alphabet::from_labels(["a"]);
        let mut ta = Alphabet::from_labels(["x"]);
        let mut m = Gsm::new(sa.clone(), ta.clone());
        m.add_rule(
            parse_regex("a", &mut sa).unwrap(),
            parse_regex("x+", &mut ta).unwrap(),
        );
        let mut gs = DataGraph::new();
        gs.add_node(NodeId(0), Value::int(5)).unwrap();
        gs.add_node(NodeId(1), Value::int(7)).unwrap();
        gs.add_edge_str(NodeId(0), "a", NodeId(1)).unwrap();
        let q: DataQuery = DataQuery::PathTest(PathTest::Atom(ta.label("x").unwrap()));
        let out = certain_answers_arbitrary(&m, &q, &gs, ArbitraryOptions::default()).unwrap();
        assert!(out.exact);
        assert_eq!(out.answers, CertainAnswers::Pairs(vec![]));
        let q: DataQuery = parse_ree("x+", &mut ta.clone()).unwrap().into();
        let out = certain_answers_arbitrary(&m, &q, &gs, ArbitraryOptions::default()).unwrap();
        assert!(!out.exact);
        assert_eq!(
            out.answers,
            CertainAnswers::Pairs(vec![(NodeId(0), NodeId(1))])
        );
    }

    #[test]
    fn unsatisfiable_rule_vacuous() {
        // rule target ∅: no solution when the source query matches
        let mut sa = Alphabet::from_labels(["a"]);
        let ta = Alphabet::from_labels(["x"]);
        let mut m = Gsm::new(sa.clone(), ta.clone());
        m.add_rule(parse_regex("a", &mut sa).unwrap(), Regex::Empty);
        let mut gs = DataGraph::new();
        gs.add_node(NodeId(0), Value::int(5)).unwrap();
        gs.add_node(NodeId(1), Value::int(5)).unwrap();
        gs.add_edge_str(NodeId(0), "a", NodeId(1)).unwrap();
        let q: DataQuery = DataQuery::PathTest(PathTest::Atom(ta.label("x").unwrap()));
        let out = certain_answers_arbitrary(&m, &q, &gs, ArbitraryOptions::default()).unwrap();
        assert_eq!(out.answers, CertainAnswers::AllVacuously);
    }

    #[test]
    fn epsilon_choice_respected() {
        // rule (a, x*): self-loop pair can use ε; distinct pair cannot.
        let mut sa = Alphabet::from_labels(["a"]);
        let mut ta = Alphabet::from_labels(["x"]);
        let mut m = Gsm::new(sa.clone(), ta.clone());
        m.add_rule(
            parse_regex("a", &mut sa).unwrap(),
            parse_regex("x*", &mut ta).unwrap(),
        );
        let mut gs = DataGraph::new();
        gs.add_node(NodeId(0), Value::int(5)).unwrap();
        gs.add_edge_str(NodeId(0), "a", NodeId(0)).unwrap();
        // Q = x: adversary satisfies the loop pair with ε — not certain
        let q: DataQuery = DataQuery::PathTest(PathTest::Atom(ta.label("x").unwrap()));
        let out = certain_answers_arbitrary(&m, &q, &gs, ArbitraryOptions::default()).unwrap();
        assert_eq!(out.answers, CertainAnswers::Pairs(vec![]));
    }

    #[test]
    fn budget_errors() {
        let (m, gs) = scenario_choice();
        let mut ta = m.target_alphabet().clone();
        let q: DataQuery = parse_ree("x y", &mut ta).unwrap().into();
        let err = certain_answers_arbitrary(
            &m,
            &q,
            &gs,
            ArbitraryOptions {
                max_skeletons: 1,
                ..ArbitraryOptions::default()
            },
        )
        .unwrap_err();
        assert!(matches!(err, ArbitraryError::TooComplex(_)));
    }
}
