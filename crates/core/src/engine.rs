//! The owned serving engine: [`MappingService`].
//!
//! The paper's tractability results (Theorems 3–5) share one shape: build a
//! canonical solution for `(M, G_s)` **once**, then answer every
//! (hom-closed) query by direct evaluation on it. The service packages that
//! recipe as a long-lived, multi-tenant engine. Its lifecycle:
//!
//! ```text
//! register ─► prepare ─► answer ─► apply_delta ─► (evict) ─► answer …
//! ```
//!
//! * **register** — [`MappingService::register`] takes ownership of a
//!   mapping and its source graph as `Arc<Gsm>` + `Arc<DataGraph>` and
//!   returns a [`MappingId`]. Registration does no work; graphs are shared,
//!   not copied.
//! * **prepare** — on first use per `(mapping, flavour)`, the canonical
//!   solution ([`universal_solution`] for the `2ⁿ`/exact engines,
//!   [`least_informative_solution`] for the `2` REM=/REE= engine) is built
//!   and frozen into a [`PreparedSolution`] (solution + [`GraphSnapshot`] +
//!   dense invented-node mask). [`MappingService::prepare`] warms it
//!   eagerly; [`MappingService::answer`] warms it lazily.
//! * **answer** — the single entry point
//!   [`MappingService::answer`]`(id, q, sem)` unifies the former
//!   `certain_answers_nulls` / `certain_answers_least_informative` /
//!   `certain_answers_exact` / `certain_boolean_*` family: [`Semantics`]
//!   picks the engine (`Nulls`, `LeastInformative`, `Exact`), [`Mode`]
//!   picks tuple vs Boolean answers, and [`Answer`] carries the result.
//!   The service is `Send + Sync`; scoped threads can call `answer`
//!   concurrently, and [`MappingService::answer_batch`] fans a query batch
//!   out over [`gde_datagraph::par`] workers itself.
//! * **shard** — [`MappingService::set_shard_count`] partitions a
//!   mapping's prepared solutions into node-range stripes
//!   ([`ShardedSnapshot`], under a cost-model-balanced
//!   [`ShardPlan`]); it takes a fixed count or [`ShardSpec::Auto`],
//!   which picks K from the graph size, the thread budget, and the
//!   observed [`ServingStats`]. Tuple answers evaluate per stripe on
//!   [`gde_datagraph::par`] workers into sorted runs and union through
//!   the streaming k-way merge ([`gde_datagraph::merge`]); Boolean
//!   answers OR across stripes with a short-circuit; `answer_batch`
//!   schedules `(query, stripe)` tasks dynamically. Answers are
//!   byte-identical at every K, `Auto` included.
//! * **apply_delta** — [`MappingService::apply_delta`] mutates the owned
//!   source graph (copy-on-write behind the shared `Arc`), bumps the
//!   mapping's generation stamp, and reconciles cached solutions: under
//!   LAV mappings added edges are **patched in place** (rule matches are
//!   per-edge, [`CanonicalSolution::patch_lav_edges`]) and bounded
//!   removals **unpatched** ([`CanonicalSolution::unpatch_lav_edges`]),
//!   with snapshots re-frozen lazily on the next answer — per label, and
//!   per stripe (untouched stripes keep their slices and generation
//!   stamps); anything else invalidates the cache and the next answer
//!   rebuilds from scratch.
//! * **evict** — prepared solutions live behind interior mutability under
//!   a byte budget ([`MappingService::set_cache_budget`]); when the cache
//!   outgrows it, the least-recently-served solutions are dropped (and
//!   rebuilt on demand), so a service can hold many registered mappings
//!   with only the hot ones resident.
//!
//! [`PreparedMapping`] — the previous, borrow-based engine — and the free
//! functions in [`crate::certain`] survive as thin deprecated wrappers over
//! this service. One-shot callers can also use [`answer_once`], which
//! skips the registry and caches entirely.

use crate::analyze::{self, MappingFacts, MappingReport, WorkloadProfile};
use crate::certain::{CertainAnswers, SolveError};
use crate::exact::{exact_answers_from, exact_boolean_from, ExactError, ExactOptions};
use crate::faults::{self, FaultSite};
use crate::gsm::Gsm;
use crate::solution::{
    least_informative_solution, universal_solution, CanonicalSolution, LavPatch, SolutionError,
};
use gde_datagraph::{
    merge_sorted_runs, par, DataGraph, FxHashMap, FxHashSet, GraphDelta, GraphError, GraphSnapshot,
    Label, NodeId, ShardPlan, ShardedSnapshot, WorkerPanic,
};
use gde_dataquery::{
    canonicalize, BindError, CompiledQuery, DataQuery, EvalControl, LruSubRelCache, PlanSkeleton,
    QueryTemplate, RowEvalShared, StopCause, SubRelCache, SubRelKey,
};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock, RwLock, RwLockReadGuard, RwLockWriteGuard};
use std::time::Instant;

// Poisoning recovery: a panicking worker must not wedge the whole service,
// so every lock acquisition falls back to the inner value (the shared
// helpers from `gde_datagraph::par`, kept under local names so every call
// site in this module stays short).
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    par::lock_recover(m)
}
fn read<T>(l: &RwLock<T>) -> RwLockReadGuard<'_, T> {
    par::read_recover(l)
}
fn write<T>(l: &RwLock<T>) -> RwLockWriteGuard<'_, T> {
    par::write_recover(l)
}

/// Handle to a mapping registered in a [`MappingService`].
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct MappingId(u64);

impl MappingId {
    /// The raw numeric id (stable for the life of the service).
    pub fn raw(self) -> u64 {
        self.0
    }
}

impl std::fmt::Display for MappingId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "mapping#{}", self.0)
    }
}

/// Handle to a query template interned in a mapping via
/// [`MappingService::register_template`]. The id is the skeleton's
/// structural hash, so it is stable across re-registration (and across
/// services) for one canonical query shape.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub struct TemplateId(u128);

impl TemplateId {
    /// The skeleton hash backing this id ([`PlanSkeleton::hash`]).
    pub fn skeleton_hash(self) -> u128 {
        self.0
    }
}

impl std::fmt::Display for TemplateId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "template#{:032x}", self.0)
    }
}

/// Tuple vs Boolean certain answers.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Mode {
    /// All certain pairs, as [`Answer::Tuples`].
    Tuples,
    /// Just "does `Q` certainly hold somewhere?", as [`Answer::Boolean`].
    Boolean,
}

/// Which certain-answer engine serves the query — the unified form of the
/// former `certain_*` method family.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Semantics {
    /// `2ⁿ_M(Q, G_s)` (Theorems 3/4): certain answers over targets with
    /// SQL nulls, from the cached universal solution. Sound and complete
    /// for every query closed under null-absorbing homomorphisms — all
    /// [`DataQuery`] classes; underapproximates plain `2`.
    Nulls(Mode),
    /// `2_M(Q, G_s)` for equality-only queries (Theorem 5): **exact**
    /// plain certain answers for REM=/REE=/RPQs, from the cached least
    /// informative solution. Rejects queries with inequalities.
    LeastInformative(Mode),
    /// Exact plain certain answers (Theorem 2's coNP procedure), reusing
    /// the cached universal solution as the enumeration skeleton.
    /// Exponential in the number of invented nodes; bounded by the
    /// [`ExactOptions`].
    Exact(Mode, ExactOptions),
}

impl Semantics {
    /// `2ⁿ` tuple answers.
    pub fn nulls() -> Semantics {
        Semantics::Nulls(Mode::Tuples)
    }

    /// `2ⁿ` Boolean answers.
    pub fn nulls_boolean() -> Semantics {
        Semantics::Nulls(Mode::Boolean)
    }

    /// `2` tuple answers via least informative solutions.
    pub fn least_informative() -> Semantics {
        Semantics::LeastInformative(Mode::Tuples)
    }

    /// `2` Boolean answers via least informative solutions.
    pub fn least_informative_boolean() -> Semantics {
        Semantics::LeastInformative(Mode::Boolean)
    }

    /// Exact tuple answers with default search bounds.
    pub fn exact() -> Semantics {
        Semantics::Exact(Mode::Tuples, ExactOptions::default())
    }

    /// Exact Boolean answers with default search bounds.
    pub fn exact_boolean() -> Semantics {
        Semantics::Exact(Mode::Boolean, ExactOptions::default())
    }

    /// The serving default for a query: exact `2` when the query allows it
    /// (equality-only, Theorem 5), the `2ⁿ` under-approximation otherwise
    /// (Theorem 4). Tuple mode.
    pub fn preferred_for(q: &CompiledQuery) -> Semantics {
        if q.is_equality_only() {
            Semantics::least_informative()
        } else {
            Semantics::nulls()
        }
    }

    /// The answer mode.
    pub fn mode(&self) -> Mode {
        match *self {
            Semantics::Nulls(m) | Semantics::LeastInformative(m) | Semantics::Exact(m, _) => m,
        }
    }

    /// The canonical-solution flavour this engine evaluates on.
    fn flavour(&self) -> Flavour {
        match self {
            Semantics::Nulls(_) | Semantics::Exact(..) => Flavour::Universal,
            Semantics::LeastInformative(_) => Flavour::LeastInformative,
        }
    }
}

/// How many node-range stripes a mapping serves from — the argument of
/// [`MappingService::set_shard_count`]. A plain `usize` converts into
/// [`ShardSpec::Fixed`], so existing `set_shard_count(id, 4)` call sites
/// keep working; [`ShardSpec::Auto`] lets the engine pick K itself.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum ShardSpec {
    /// Exactly this many stripes (`0` and `1` both mean unsharded).
    Fixed(usize),
    /// Let the engine choose K per mapping, from the source-graph size,
    /// the worker-thread budget ([`par::max_threads`] /
    /// `GDE_MAX_THREADS`), and the observed serving statistics
    /// ([`MappingService::serving_stats`]): small graphs stay unsharded,
    /// Boolean-heavy workloads get stripes for the OR-short-circuit even
    /// on one core, and heavy evaluations oversubscribe stripes so the
    /// dynamic scheduler can balance them. The pick is re-resolved on
    /// every (re)preparation, so it tracks the workload as stats accrue.
    Auto,
}

/// The `entry.shards` encoding of [`ShardSpec::Auto`] (a fixed stripe
/// count this large is not meaningful — plans cap far below it).
const AUTO_SHARDS: usize = usize::MAX;

impl ShardSpec {
    fn encode(self) -> usize {
        match self {
            ShardSpec::Fixed(k) => k.clamp(1, AUTO_SHARDS - 1),
            ShardSpec::Auto => AUTO_SHARDS,
        }
    }

    fn decode(raw: usize) -> ShardSpec {
        if raw == AUTO_SHARDS {
            ShardSpec::Auto
        } else {
            ShardSpec::Fixed(raw.max(1))
        }
    }
}

impl From<usize> for ShardSpec {
    fn from(k: usize) -> ShardSpec {
        ShardSpec::Fixed(k)
    }
}

/// Cumulative serving statistics for one stripe of a mapping (part of
/// [`ServingStats`]). Unsharded mappings record everything under stripe 0.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct StripeServingStats {
    /// Per-(query, stripe) evaluations recorded against this stripe.
    pub evals: u64,
    /// Total evaluation wall-clock nanoseconds.
    pub eval_ns: u64,
    /// Total tuples produced (0 for Boolean evaluations).
    pub tuples: u64,
}

/// Cumulative per-mapping serving statistics, collected by
/// [`MappingService::answer`] / [`MappingService::answer_batch`] on every
/// per-(query, stripe) evaluation: wall-clock evaluation time and result
/// cardinality, in aggregate and per stripe. [`ShardSpec::Auto`] feeds its
/// shard-count picks from these; [`MappingService::serving_stats`] exposes
/// them to operators. The accumulator survives shard-count changes and
/// cache evictions (it belongs to the mapping, not to a prepared
/// solution). The exact-enumeration engine ([`Semantics::Exact`]) does
/// not decompose into stripes; its serves are recorded as single
/// evaluations under stripe 0, so hit-rate and template numbers cover
/// every semantics.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ServingStats {
    /// The tenant namespace this mapping serves under (empty when the
    /// mapping is unlabelled). Set by
    /// [`MappingService::set_tenant_label`]; multi-tenant front-ends
    /// label every mapping so cross-mapping aggregation
    /// ([`ServingStats::absorb`]) can refuse to mix tenants.
    pub tenant: String,
    /// Tuple-mode per-(query, stripe) evaluations.
    pub tuple_evals: u64,
    /// Boolean-mode per-(query, stripe) evaluations.
    pub boolean_evals: u64,
    /// Total evaluation wall-clock nanoseconds across both modes (stripe
    /// evaluation only; the shared phase-1 and merge work is accounted
    /// separately below).
    pub eval_ns: u64,
    /// Total tuples produced by tuple-mode evaluations.
    pub tuples: u64,
    /// Nanoseconds spent building shared phase-1 state (REE memos, full
    /// conjunctive answers) ahead of the stripe fan-out — the serial work
    /// that does not shrink with the stripe count.
    pub memo_build_ns: u64,
    /// Nanoseconds spent merging per-stripe sorted runs into final tuple
    /// answers.
    pub merge_ns: u64,
    /// Sub-relation cache hits across sharded serving calls.
    pub cache_hits: u64,
    /// Sub-relation cache misses across sharded serving calls.
    pub cache_misses: u64,
    /// Resident bytes in the mapping's sub-relation caches — a gauge
    /// (last observed value), unlike the cumulative counters above.
    pub cache_bytes: u64,
    /// Serves rejected at admission: the deadline or cancel flag had
    /// already fired before any evaluation started, so the serve was
    /// refused at the door without charging anything.
    pub rejected: u64,
    /// Serves that ran **without** the sub-relation cache because
    /// admission control decided their estimated cache footprint could
    /// not fit the service budget even after eviction.
    pub degraded: u64,
    /// Serves answered from the static analyzer's empty verdict — the
    /// query's labels are disjoint from every label the mapping can
    /// produce and it cannot match an isolated node, so its certain
    /// answer is empty on every source graph. These serves touch no
    /// stripe, no prepared solution, and no cache, and record no
    /// evaluations.
    pub static_empty: u64,
    /// Serves that returned [`ServeError::DeadlineExceeded`] after
    /// evaluation had started.
    pub deadline_exceeded: u64,
    /// Serves that returned [`ServeError::Cancelled`] after evaluation
    /// had started.
    pub cancelled: u64,
    /// Worker panics contained by the stripe fan-out (injected faults
    /// and real bugs alike) — each panicking worker counts once.
    pub worker_panics: u64,
    /// Serves retried after a quarantine (panic containment rebuilds the
    /// prepared solution once and re-runs the serve).
    pub retries: u64,
    /// Serves answered through an already-interned query template —
    /// explicitly via `answer_bound`, or transparently when
    /// canonicalisation routed an ad-hoc query onto an existing
    /// skeleton. The first serve of a new skeleton interns (and
    /// compiles) its template and does not count.
    pub template_hits: u64,
    /// Nanoseconds of query compilation skipped by template reuse: each
    /// template hit credits the template's one-time compile cost here,
    /// so the gauge reads as "compilation work traffic would have done
    /// without parameterized plans".
    pub compile_skipped_ns: u64,
    /// The same counters, split by stripe index (stripe 0 for unsharded
    /// serving). Grows to the largest stripe index observed.
    pub per_stripe: Vec<StripeServingStats>,
}

impl ServingStats {
    /// Mean nanoseconds per recorded evaluation (0 when nothing has been
    /// recorded).
    pub fn mean_eval_ns(&self) -> u64 {
        self.eval_ns
            .checked_div(self.tuple_evals + self.boolean_evals)
            .unwrap_or(0)
    }

    /// Mean tuples per tuple-mode evaluation (0 before the first one).
    pub fn mean_tuples(&self) -> u64 {
        self.tuples.checked_div(self.tuple_evals).unwrap_or(0)
    }

    /// Fraction of sharded serving time spent on shared phase-1 builds
    /// (memo/cache construction) rather than stripe evaluation, in
    /// `[0, 1]`. High values mean the serial prefix dominates and extra
    /// stripes cannot pay off.
    pub fn memo_share(&self) -> f64 {
        let total = self.memo_build_ns + self.eval_ns;
        if total == 0 {
            return 0.0;
        }
        self.memo_build_ns as f64 / total as f64
    }

    /// Sub-relation cache hit rate in `[0, 1]` (0 before any lookup).
    pub fn cache_hit_rate(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            return 0.0;
        }
        self.cache_hits as f64 / total as f64
    }

    /// Fold another mapping's cumulative stats into this accumulator —
    /// the aggregation step a multi-tenant front-end runs per tenant.
    /// Returns `false` (and absorbs **nothing**) when the two sides
    /// carry different tenant labels: cumulative counters from one
    /// tenant must never bleed into another tenant's aggregate. An
    /// unlabelled accumulator (`tenant.is_empty()`) with no recorded
    /// work adopts the other side's label, so
    /// `stats.absorb(&svc.serving_stats(id)?)` folds a tenant's mappings
    /// starting from `ServingStats::default()`.
    ///
    /// Cumulative counters add; the `cache_bytes` gauge adds too
    /// (resident bytes across a tenant's mappings are disjoint);
    /// per-stripe rows add element-wise.
    pub fn absorb(&mut self, other: &ServingStats) -> bool {
        if self.tenant != other.tenant {
            let fresh = self.tuple_evals == 0
                && self.boolean_evals == 0
                && self.eval_ns == 0
                && self.per_stripe.is_empty();
            if !(self.tenant.is_empty() && fresh) {
                return false;
            }
            self.tenant = other.tenant.clone();
        }
        self.tuple_evals += other.tuple_evals;
        self.boolean_evals += other.boolean_evals;
        self.eval_ns += other.eval_ns;
        self.tuples += other.tuples;
        self.memo_build_ns += other.memo_build_ns;
        self.merge_ns += other.merge_ns;
        self.cache_hits += other.cache_hits;
        self.cache_misses += other.cache_misses;
        self.cache_bytes += other.cache_bytes;
        self.rejected += other.rejected;
        self.degraded += other.degraded;
        self.static_empty += other.static_empty;
        self.deadline_exceeded += other.deadline_exceeded;
        self.cancelled += other.cancelled;
        self.worker_panics += other.worker_panics;
        self.retries += other.retries;
        self.template_hits += other.template_hits;
        self.compile_skipped_ns += other.compile_skipped_ns;
        if self.per_stripe.len() < other.per_stripe.len() {
            self.per_stripe
                .resize(other.per_stripe.len(), StripeServingStats::default());
        }
        for (mine, theirs) in self.per_stripe.iter_mut().zip(&other.per_stripe) {
            mine.evals += theirs.evals;
            mine.eval_ns += theirs.eval_ns;
            mine.tuples += theirs.tuples;
        }
        true
    }

    /// Fold one sharded call's shared-phase accounting in: phase-1 build
    /// and merge nanoseconds, this call's cache hit/miss counts, and the
    /// current cache-bytes gauge.
    fn record_overheads(
        &mut self,
        memo_ns: u64,
        merge_ns: u64,
        hits: u64,
        misses: u64,
        bytes: u64,
    ) {
        self.memo_build_ns += memo_ns;
        self.merge_ns += merge_ns;
        self.cache_hits += hits;
        self.cache_misses += misses;
        self.cache_bytes = bytes;
    }

    fn record(&mut self, stripe: usize, ns: u64, tuples: usize, boolean: bool) {
        if boolean {
            self.boolean_evals += 1;
        } else {
            self.tuple_evals += 1;
            self.tuples += tuples as u64;
        }
        self.eval_ns += ns;
        if self.per_stripe.len() <= stripe {
            self.per_stripe
                .resize(stripe + 1, StripeServingStats::default());
        }
        let s = &mut self.per_stripe[stripe];
        s.evals += 1;
        s.eval_ns += ns;
        s.tuples += tuples as u64;
    }
}

/// The [`ShardSpec::Auto`] policy: pick a stripe count from the graph
/// size, the thread budget, and the observed workload.
///
/// * Stripes below ~1k rows don't amortise their slice overhead: tiny
///   graphs stay unsharded, and K never exceeds `nodes / 1024`.
/// * The baseline is one stripe per worker thread.
/// * A Boolean-leaning workload gets at least 4 stripes (when the graph
///   affords them): the cross-stripe OR-short-circuit pays even on one
///   core, because an unsharded Boolean answer evaluates the full
///   relation before its `any()`.
/// * When observed evaluations are heavy (≥ 10 ms mean), stripes are
///   oversubscribed 2× so the dynamic `(query, stripe)` scheduler can
///   balance uneven stripes across workers.
/// * When the observed workload spends most of its sharded time in the
///   shared phase-1 build ([`ServingStats::memo_share`] > ½) — the
///   serial prefix stripes cannot shrink — oversubscription is pointless
///   and K is capped back to the thread count (Amdahl: extra stripes
///   only add slice-and-merge overhead to a memo-bound workload).
fn auto_shard_count(nodes: usize, threads: usize, stats: &ServingStats) -> usize {
    const MIN_STRIPE_ROWS: usize = 1024;
    const HEAVY_EVAL_NS: u64 = 10_000_000;
    let by_size = (nodes / MIN_STRIPE_ROWS).max(1);
    let mut k = threads.max(1).min(by_size);
    if stats.boolean_evals > stats.tuple_evals {
        k = k.max(4.min(by_size));
    }
    if stats.mean_eval_ns() >= HEAVY_EVAL_NS {
        k = (2 * k).min(by_size);
    }
    if stats.memo_share() > 0.5 {
        k = k.min(threads.max(1));
    }
    k.clamp(1, 64)
}

/// A certain-answer result from [`MappingService::answer`]: tuples for
/// [`Mode::Tuples`], a Boolean for [`Mode::Boolean`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Answer {
    /// The certain pairs (or the vacuous "everything" marker).
    Tuples(CertainAnswers),
    /// The Boolean certain answer.
    Boolean(bool),
}

impl Answer {
    /// The tuple answers; panics on a Boolean answer.
    pub fn into_tuples(self) -> CertainAnswers {
        match self {
            Answer::Tuples(t) => t,
            Answer::Boolean(_) => panic!("Boolean answer where tuples were expected"),
        }
    }

    /// The certain pairs; panics on a Boolean or vacuous answer.
    pub fn into_pairs(self) -> Vec<(NodeId, NodeId)> {
        self.into_tuples().into_pairs()
    }

    /// The Boolean answer; panics on a tuple answer.
    pub fn boolean(&self) -> bool {
        match self {
            Answer::Boolean(b) => *b,
            Answer::Tuples(_) => panic!("tuple answer where a Boolean was expected"),
        }
    }
}

/// Per-call serving options for [`MappingService::answer_with`] /
/// [`MappingService::answer_batch_with`]: an optional wall-clock deadline
/// and a caller-owned cancel flag.
///
/// Both are **cooperative**: the engine checks between stripes of a
/// fan-out, between phase-1 memo nodes, and before merges — a unit of
/// work that has started runs to completion. An expired deadline returns
/// [`ServeError::DeadlineExceeded`] (with partial-work stats), a raised
/// cancel flag [`ServeError::Cancelled`]; in both cases nothing
/// incomplete is cached, so an immediate retry recomputes from
/// consistent state and returns byte-identical answers.
///
/// ```
/// # use gde_core::engine::ServeOptions;
/// # use std::time::{Duration, Instant};
/// let opts = ServeOptions::new().with_deadline(Instant::now() + Duration::from_millis(50));
/// let cancel = opts.cancel.clone(); // hand to another thread; store(true) to cancel
/// # let _ = cancel;
/// ```
#[derive(Clone, Debug)]
pub struct ServeOptions {
    /// Serve must finish by this instant (checked cooperatively).
    pub deadline: Option<Instant>,
    /// Raised by the caller (from any thread) to cancel the serve.
    pub cancel: Arc<AtomicBool>,
}

impl Default for ServeOptions {
    fn default() -> ServeOptions {
        ServeOptions {
            deadline: None,
            cancel: Arc::new(AtomicBool::new(false)),
        }
    }
}

impl ServeOptions {
    /// Unbounded options: no deadline, a fresh (never raised) cancel flag.
    pub fn new() -> ServeOptions {
        ServeOptions::default()
    }

    /// Set the deadline.
    pub fn with_deadline(mut self, deadline: Instant) -> ServeOptions {
        self.deadline = Some(deadline);
        self
    }

    /// Use a caller-provided cancel flag (share clones across calls to
    /// cancel a whole group at once).
    pub fn with_cancel(mut self, cancel: Arc<AtomicBool>) -> ServeOptions {
        self.cancel = cancel;
        self
    }

    /// The evaluation control one serve runs under (a fresh latch per
    /// call, sharing this options value's deadline and cancel flag).
    fn control(&self) -> EvalControl {
        EvalControl::new(self.deadline, Some(self.cancel.clone()))
    }
}

/// Map a fired stop cause to its serve error, carrying partial-work
/// stats.
fn stop_error(cause: StopCause, completed: usize, total: usize) -> ServeError {
    match cause {
        StopCause::Deadline => ServeError::DeadlineExceeded {
            completed_stripes: completed,
            total_stripes: total,
        },
        StopCause::Cancelled => ServeError::Cancelled {
            completed_stripes: completed,
            total_stripes: total,
        },
    }
}

/// Map a contained fan-out panic to its serve error.
fn panic_error(p: WorkerPanic) -> ServeError {
    ServeError::StripePanicked {
        message: p.message,
        stripes: p.indices,
    }
}

/// Errors from the serving engine. `NoSolution` only surfaces from the
/// solution accessors ([`MappingService::solution`] and the deprecated
/// `PreparedMapping` ones); [`MappingService::answer`] converts it into the
/// vacuous answer (every tuple certain) instead.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ServeError {
    /// No mapping is registered under this id (never was, or unregistered).
    UnknownMapping(MappingId),
    /// The mapping is not relational; canonical-solution engines require
    /// word targets.
    NotRelational,
    /// No solution exists at all (an ε-rule conflict).
    NoSolution {
        /// The offending source pair.
        pair: (NodeId, NodeId),
    },
    /// The query is outside the fragment the chosen semantics supports.
    UnsupportedQuery(&'static str),
    /// No template is interned under this id for the mapping (never
    /// registered, or registered on a different mapping).
    UnknownTemplate(TemplateId),
    /// The binding vector's length does not match the template
    /// skeleton's slot count.
    BindingArity {
        /// Slots the skeleton expects.
        expected: usize,
        /// Labels the caller supplied.
        got: usize,
    },
    /// The exact engine's search bounds were exceeded.
    TooComplex {
        /// Number of invented nodes in the skeleton.
        invented: usize,
        /// The configured cap that was exceeded.
        cap: String,
    },
    /// A delta failed validation against the source graph.
    InvalidDelta(GraphError),
    /// A stripe worker (or the shared phase-1/merge work) panicked and
    /// the panic was contained. The first occurrence quarantines the
    /// prepared solution and retries once; this error means the retry
    /// panicked too.
    StripePanicked {
        /// The panic payload message of the first failed worker.
        message: String,
        /// Stripe (or task) indices whose workers panicked, sorted.
        /// Empty when the panic happened outside the fan-out (phase-1
        /// build, merge, refreeze).
        stripes: Vec<usize>,
    },
    /// The [`ServeOptions`] deadline expired before the serve finished.
    /// Nothing incomplete was cached: a retry recomputes from consistent
    /// state and returns byte-identical answers.
    DeadlineExceeded {
        /// Stripes whose evaluation had completed when the serve stopped.
        completed_stripes: usize,
        /// Total stripes the serve was scheduled over (0 when the serve
        /// was rejected before any plan was consulted).
        total_stripes: usize,
    },
    /// The [`ServeOptions`] cancel flag was raised before the serve
    /// finished. Same consistency guarantee as
    /// [`ServeError::DeadlineExceeded`].
    Cancelled {
        /// Stripes whose evaluation had completed when the serve stopped.
        completed_stripes: usize,
        /// Total stripes the serve was scheduled over.
        total_stripes: usize,
    },
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::UnknownMapping(id) => write!(f, "unknown {id}"),
            ServeError::NotRelational => write!(f, "mapping is not relational"),
            ServeError::NoSolution { pair } => write!(
                f,
                "no solution exists: ε-rule forces distinct nodes {} = {}",
                pair.0, pair.1
            ),
            ServeError::UnsupportedQuery(what) => write!(f, "unsupported query: {what}"),
            ServeError::UnknownTemplate(id) => write!(f, "unknown {id}"),
            ServeError::BindingArity { expected, got } => write!(
                f,
                "binding arity mismatch: template has {expected} slot(s), got {got}"
            ),
            ServeError::TooComplex { invented, cap } => write!(
                f,
                "instance too large for exhaustive search ({invented} invented nodes; cap: {cap})"
            ),
            ServeError::InvalidDelta(e) => write!(f, "invalid delta: {e}"),
            ServeError::StripePanicked { message, stripes } => {
                if stripes.is_empty() {
                    write!(f, "serving worker panicked: {message}")
                } else {
                    write!(f, "stripe worker(s) {stripes:?} panicked: {message}")
                }
            }
            ServeError::DeadlineExceeded {
                completed_stripes,
                total_stripes,
            } => write!(
                f,
                "deadline exceeded ({completed_stripes}/{total_stripes} stripes completed)"
            ),
            ServeError::Cancelled {
                completed_stripes,
                total_stripes,
            } => write!(
                f,
                "cancelled ({completed_stripes}/{total_stripes} stripes completed)"
            ),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<SolutionError> for ServeError {
    fn from(e: SolutionError) -> ServeError {
        match e {
            SolutionError::NotRelational => ServeError::NotRelational,
            SolutionError::NoSolution { pair } => ServeError::NoSolution { pair },
        }
    }
}

impl From<ExactError> for ServeError {
    fn from(e: ExactError) -> ServeError {
        match e {
            ExactError::NotRelational => ServeError::NotRelational,
            ExactError::TooComplex { invented, cap } => ServeError::TooComplex { invented, cap },
        }
    }
}

/// Convert a serving error back into the legacy `SolveError` (for the
/// deprecated canonical-engine wrappers). The wrappers serve through a
/// private single-mapping service with unbounded options, so the
/// deadline/cancel arms cannot fire; a contained worker panic, however,
/// *can* reach them, and the legacy error type predates typed panics —
/// re-raise it so the pre-containment behaviour (a propagating panic) is
/// preserved for the deprecated surface.
pub(crate) fn solve_error(e: ServeError) -> SolveError {
    match e {
        ServeError::NotRelational => SolveError::NotRelational,
        ServeError::UnsupportedQuery(what) => SolveError::UnsupportedQuery(what),
        ServeError::StripePanicked { message, .. } => {
            panic!("serving worker panicked (legacy wrapper re-raise): {message}")
        }
        other => unreachable!("canonical serving cannot fail with {other:?}"),
    }
}

/// Convert a serving error back into the legacy `ExactError` (for the
/// exact-engine wrappers; same re-raise contract as [`solve_error`]).
pub(crate) fn exact_error(e: ServeError) -> ExactError {
    match e {
        ServeError::NotRelational => ExactError::NotRelational,
        ServeError::TooComplex { invented, cap } => ExactError::TooComplex { invented, cap },
        ServeError::StripePanicked { message, .. } => {
            panic!("exact serving worker panicked (legacy wrapper re-raise): {message}")
        }
        other => unreachable!("exact serving cannot fail with {other:?}"),
    }
}

/// What [`MappingService::apply_delta`] did.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DeltaReport {
    /// The mapping's generation stamp after the delta.
    pub generation: u64,
    /// `true` when every cached solution was patched in place (or nothing
    /// was cached); `false` when caches had to be invalidated and the next
    /// answer pays a full rebuild.
    pub patched: bool,
    /// Nodes added.
    pub added_nodes: usize,
    /// Edges actually added (already-present edges don't count).
    pub added_edges: usize,
    /// Edges actually removed.
    pub removed_edges: usize,
}

/// A point-in-time snapshot of service-wide counters.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ServiceStats {
    /// Registered mappings.
    pub mappings: usize,
    /// Resident cached solutions (ready or patched), across flavours.
    pub cached_solutions: usize,
    /// Approximate bytes held by resident solutions.
    pub cached_bytes: usize,
    /// Solutions evicted under the byte budget so far.
    pub evictions: u64,
    /// Deltas fully absorbed by in-place patching.
    pub patched_deltas: u64,
    /// Deltas that invalidated at least one cached solution.
    pub invalidating_deltas: u64,
}

/// Refreeze material carried alongside a delta-patched solution: the
/// previous frozen artifacts plus what the patches made stale. On the next
/// answer, [`PreparedSolution::refreeze`] rebuilds only the stale parts —
/// per-label relation carry-over on the snapshot, per-shard slice and
/// stamp carry-over on the sharded view.
#[derive(Debug)]
struct RefreezeCarry {
    /// The snapshot before the patch(es).
    snapshot: Arc<GraphSnapshot>,
    /// The sharded view before the patch(es) (when sharding was on).
    sharded: Option<Arc<ShardedSnapshot>>,
    /// Per-shard generation stamps before the patch(es).
    stamps: Vec<u64>,
    /// Target labels whose edge sets changed.
    stale_labels: FxHashSet<Label>,
    /// Dense rows (in `snapshot`) of nodes the patches touched.
    touched_rows: FxHashSet<u32>,
    /// The sub-relation cache of the solution being patched: carried so
    /// the refrozen solution keeps the same cache object (budget, byte
    /// accounting), with superseded-generation entries purged at
    /// assembly.
    sub_cache: Option<Arc<LruSubRelCache>>,
    /// `false` once the node set changed (grew/shrank): a full freeze is
    /// required and only the accounting above survives.
    reusable: bool,
}

impl RefreezeCarry {
    fn from_prepared(prep: &PreparedSolution) -> RefreezeCarry {
        RefreezeCarry {
            snapshot: prep.snapshot.clone(),
            sharded: prep.sharded.clone(),
            stamps: prep.shard_stamps.clone(),
            stale_labels: FxHashSet::default(),
            touched_rows: FxHashSet::default(),
            sub_cache: Some(prep.sub_cache.clone()),
            reusable: true,
        }
    }

    /// Approximate heap bytes the carry keeps alive (the previous
    /// snapshot, shard slices, and sub-relation cache), charged against
    /// the cache budget while the slot waits for its refreeze.
    fn approx_bytes(&self) -> usize {
        self.snapshot.approx_bytes()
            + self.sharded.as_ref().map_or(0, |s| s.approx_bytes())
            + self.sub_cache.as_ref().map_or(0, |c| c.bytes())
    }

    /// Fold a patch summary into the carry.
    fn absorb(&mut self, patch: &LavPatch) {
        self.stale_labels
            .extend(patch.touched_labels.iter().copied());
        for &node in &patch.touched_nodes {
            if let Some(row) = self.snapshot.idx(node) {
                self.touched_rows.insert(row);
            }
        }
        if patch.grew || patch.shrank {
            self.reusable = false;
        }
    }
}

/// A canonical solution frozen for serving: the solution itself, its
/// snapshot, a dense-index mask of the invented nodes (so dom-filtering
/// is an array lookup per endpoint instead of a hash probe per pair), and
/// — when the mapping is sharded — the node-range-partitioned view with
/// per-shard generation stamps.
#[derive(Debug)]
pub struct PreparedSolution {
    solution: CanonicalSolution,
    snapshot: Arc<GraphSnapshot>,
    invented_mask: Vec<bool>,
    /// Present when the mapping serves from more than one stripe.
    sharded: Option<Arc<ShardedSnapshot>>,
    /// Generation stamp per stripe: the last generation whose delta
    /// touched rows in that stripe (so untouched stripes keep their
    /// slices — and their stamp — across a refreeze).
    shard_stamps: Vec<u64>,
    /// The mapping generation this solution was frozen at: the stamp on
    /// every sub-relation cache key this solution reads or writes.
    generation: u64,
    /// Evaluated sub-relations (closures, tail factors, per-stripe
    /// answers), keyed `(generation, stripe-or-global, subplan hash)`.
    /// Owned per prepared solution — the two flavours of one mapping
    /// serve different solutions and never share entries — and carried
    /// across delta refreezes (with superseded generations purged) via
    /// [`RefreezeCarry`].
    sub_cache: Arc<LruSubRelCache>,
    /// Cache bytes currently charged against the service's eviction
    /// budget for `sub_cache` (the cache fills while serving, so the
    /// charge is re-synced on every serve; see
    /// [`PreparedSolution::sync_cache_charge`]).
    charged_cache_bytes: AtomicUsize,
    /// The owning mapping's serving-stats accumulator (a fresh, unshared
    /// one for solutions prepared outside a service, e.g. `answer_once`).
    serving: Arc<Mutex<ServingStats>>,
    /// Cold-start admission prior: estimated sub-relation-cache bytes a
    /// serve of the *registered workload* may charge, from per-label edge
    /// counts of the labels the workload actually reads. `None` without a
    /// workload; ignored once serving statistics exist.
    cold_bytes: Option<usize>,
}

/// Default byte budget of one prepared solution's sub-relation cache.
/// Self-bounding (the cache evicts LRU entries past this) on top of the
/// service-level eviction budget its resident bytes are charged to.
const SUB_REL_CACHE_BUDGET: usize = 256 << 20;

impl PreparedSolution {
    fn new(
        solution: CanonicalSolution,
        shards: usize,
        generation: u64,
        prior: Option<&WorkloadProfile>,
    ) -> PreparedSolution {
        let snapshot = Arc::new(solution.graph.snapshot());
        PreparedSolution::assemble(solution, snapshot, shards, generation, None, prior)
    }

    /// Refreeze a delta-patched solution, reusing whatever the carry says
    /// is still fresh; falls back to a full freeze when the node set
    /// changed (or no carry is available).
    fn refreeze(
        solution: CanonicalSolution,
        carry: Option<RefreezeCarry>,
        shards: usize,
        generation: u64,
        prior: Option<&WorkloadProfile>,
    ) -> PreparedSolution {
        if let Some(c) = carry {
            if c.reusable {
                if let Some(snap) =
                    GraphSnapshot::refreeze_from(&solution.graph, &c.snapshot, &c.stale_labels)
                {
                    return PreparedSolution::assemble(
                        solution,
                        Arc::new(snap),
                        shards,
                        generation,
                        Some(&c),
                        prior,
                    );
                }
            }
        }
        PreparedSolution::new(solution, shards, generation, prior)
    }

    fn assemble(
        solution: CanonicalSolution,
        snapshot: Arc<GraphSnapshot>,
        shards: usize,
        generation: u64,
        carry: Option<&RefreezeCarry>,
        prior: Option<&WorkloadProfile>,
    ) -> PreparedSolution {
        // an injected panic here models a crash mid-(re)freeze: the slot
        // the caller took the previous state from stays Empty with zero
        // bytes charged, so containment leaves the service consistent
        faults::point(FaultSite::Refreeze);
        let invented = solution.invented_set();
        let invented_mask = (0..snapshot.n() as u32)
            .map(|d| invented.contains(&snapshot.id_at(d)))
            .collect();
        let k = shards.max(1);
        let (sharded, shard_stamps) = if k > 1 {
            let plan = match carry.and_then(|c| c.sharded.as_ref()) {
                // keep the previous stripe layout so slices and stamps line
                // up — but only while it still has the resolved stripe
                // count, so an `Auto` pick that drifted with the workload
                // (or an explicit resize) re-plans instead of being
                // silently pinned to the carried layout
                Some(prev) if prev.plan().n() == snapshot.n() && prev.plan().shard_count() == k => {
                    prev.plan().clone()
                }
                // with a registered workload, the analyzer's label set
                // focuses the cost model on the labels serving will
                // actually walk (cold-start prior; the layout stays a
                // contiguous partition, so answers are unchanged)
                _ => match prior.filter(|p| !p.labels().is_empty()) {
                    Some(p) => ShardPlan::by_cost_focused(&snapshot, k, p.labels()),
                    None => ShardPlan::by_cost(&snapshot, k),
                },
            };
            let ss = ShardedSnapshot::new(snapshot.clone(), plan);
            let mut stamps = vec![generation; ss.shard_count()];
            if let Some(c) = carry {
                if let Some(prev) = c.sharded.as_ref().filter(|p| p.plan() == ss.plan()) {
                    let mut touched = vec![false; ss.shard_count()];
                    for &row in &c.touched_rows {
                        touched[ss.plan().shard_of(row)] = true;
                    }
                    for (i, stamp) in stamps.iter_mut().enumerate() {
                        if !touched[i] {
                            *stamp = c.stamps.get(i).copied().unwrap_or(generation);
                        }
                    }
                    // a stripe keeps a label's slice unless that label went
                    // stale *and* the stripe holds a touched row
                    ss.carry_from(prev, |shard, l| {
                        !touched[shard] || !c.stale_labels.contains(&l)
                    });
                }
            }
            ss.warm();
            (Some(Arc::new(ss)), stamps)
        } else {
            (None, vec![generation])
        };
        // keep the patched solution's cache object (its budget and byte
        // accounting survive), but purge entries from superseded
        // generations: a stripe's answer rows depend on the *whole*
        // graph, so any delta invalidates every stripe's cached results
        // — per-stripe stamps only validate row-local label slices,
        // which `carry_from` above already reuses at a lower layer
        let sub_cache = carry
            .and_then(|c| c.sub_cache.clone())
            .unwrap_or_else(|| Arc::new(LruSubRelCache::new(SUB_REL_CACHE_BUDGET)));
        sub_cache.retain_generation(generation);
        // cold-start admission prior: sub-relations over workload labels
        // are bounded by those labels' edge mass (per stripe artifacts,
        // closures and merge rows ≈ tens of bytes per pair), not by the
        // whole snapshot
        let cold_bytes = prior.map(|p| {
            let pairs: usize = p
                .labels()
                .iter()
                .map(|&l| snapshot.label_edge_count(l))
                .sum::<usize>()
                + if p.any_isolated() { snapshot.n() } else { 0 };
            pairs.saturating_mul(64)
        });
        PreparedSolution {
            solution,
            snapshot,
            invented_mask,
            sharded,
            shard_stamps,
            generation,
            sub_cache,
            charged_cache_bytes: AtomicUsize::new(0),
            serving: Arc::new(Mutex::new(ServingStats::default())),
            cold_bytes,
        }
    }

    /// The canonical solution.
    pub fn solution(&self) -> &CanonicalSolution {
        &self.solution
    }

    /// The frozen snapshot of the solution's target graph.
    pub fn snapshot(&self) -> &GraphSnapshot {
        &self.snapshot
    }

    /// The sharded view (when the mapping serves from more than one
    /// stripe).
    pub fn sharded(&self) -> Option<&ShardedSnapshot> {
        self.sharded.as_deref()
    }

    /// Number of stripes this solution serves from (1 = unsharded).
    pub fn shard_count(&self) -> usize {
        self.sharded.as_ref().map_or(1, |s| s.shard_count())
    }

    /// Per-stripe generation stamps: entry `i` is the last generation
    /// whose delta touched rows in stripe `i`. Untouched stripes keep
    /// their stamp (and their cached slices) across delta refreezes —
    /// invalidation is per shard, not per mapping.
    pub fn shard_stamps(&self) -> &[u64] {
        &self.shard_stamps
    }

    /// Approximate heap footprint (solution + snapshot + mask + shard
    /// slices + the sub-relation cache charge as last settled by the
    /// service), the unit the service's eviction budget is counted in.
    pub fn approx_bytes(&self) -> usize {
        self.solution.approx_bytes()
            + self.snapshot.approx_bytes()
            + self.invented_mask.len()
            + self.sharded.as_ref().map_or(0, |s| s.approx_bytes())
            + self.charged_cache_bytes.load(Ordering::Relaxed)
    }

    /// Re-read the sub-relation cache's resident bytes into the charge
    /// gauge; returns `(new, previous)` so the caller can settle the
    /// difference against the service-level budget. The cache fills
    /// *while serving* (after the build-time charge), so the service
    /// re-syncs on every cache-hit serve; between serves the charge lags
    /// by at most one call's insertions — bounded by the cache's own
    /// byte budget.
    fn sync_cache_charge(&self) -> (usize, usize) {
        let live = self.sub_cache.bytes();
        let prev = self.charged_cache_bytes.swap(live, Ordering::Relaxed);
        (live, prev)
    }

    /// The sub-relation cache this solution serves through.
    pub fn sub_cache(&self) -> &Arc<LruSubRelCache> {
        &self.sub_cache
    }

    /// Admission-control estimate of the extra sub-relation-cache bytes
    /// one cold serve of this solution may charge: per-stripe evaluated
    /// relations plus phase-1 artifacts are bounded by the snapshot's own
    /// footprint, and the cache clamps itself at its byte budget. Before
    /// any serving statistics exist, a registered workload's label
    /// densities give a sharper cold-start prior ([`Self::cold_bytes`])
    /// than the whole-snapshot bound.
    fn estimated_serve_bytes(&self) -> usize {
        let full = self.snapshot.approx_bytes();
        let stats_cold = {
            let s = lock(&self.serving);
            s.tuple_evals + s.boolean_evals == 0
        };
        let est = match (stats_cold, self.cold_bytes) {
            (true, Some(prior)) => prior.min(full),
            _ => full,
        };
        est.min(SUB_REL_CACHE_BUDGET)
    }

    /// Shared row-evaluation state wired to this solution's sub-relation
    /// cache at its generation — the per-query handle every sharded
    /// serving call evaluates through.
    fn row_shared(&self) -> RowEvalShared {
        RowEvalShared::with_cache(
            self.sub_cache.clone() as Arc<dyn SubRelCache>,
            self.generation,
        )
    }

    /// [`PreparedSolution::row_shared`] under a deadline/cancel control;
    /// `use_cache: false` is the admission-control degraded mode — every
    /// artifact is computed from scratch and nothing is charged to the
    /// cache budget.
    fn row_shared_with(&self, ctrl: &Arc<EvalControl>, use_cache: bool) -> RowEvalShared {
        let shared = if use_cache {
            self.row_shared()
        } else {
            RowEvalShared::new()
        };
        shared.with_control(ctrl.clone())
    }

    /// Fold one sharded call's shared-phase accounting (phase-1 build
    /// and merge time, the handle's cache hit/miss counts) into the
    /// serving stats, refreshing the cache-bytes gauge.
    fn record_overheads(&self, memo_ns: u64, merge_ns: u64, shared: &RowEvalShared) {
        lock(&self.serving).record_overheads(
            memo_ns,
            merge_ns,
            shared.cache_hits(),
            shared.cache_misses(),
            self.sub_cache.bytes() as u64,
        );
    }

    /// Unfreeze, keeping only the solution (the delta-patching path).
    fn into_solution(self) -> CanonicalSolution {
        self.solution
    }

    /// Fold one per-(query, stripe) evaluation into the mapping's serving
    /// stats (see [`ServingStats`]). One mutex acquisition per evaluation:
    /// the lock is held for a handful of adds (no allocation once
    /// `per_stripe` has grown), so at the µs-to-ms granularity of stripe
    /// evaluations the serialization is noise; revisit with per-worker
    /// accumulators if evaluations ever get micro enough to contend.
    fn record(&self, stripe: usize, elapsed: std::time::Duration, tuples: usize, boolean: bool) {
        lock(&self.serving).record(stripe, elapsed.as_nanos() as u64, tuples, boolean);
    }

    /// Evaluate a compiled query and keep pairs over `dom(M, G_s)` (drop
    /// tuples touching invented nodes). Unsharded, the query is consumed
    /// in relation form: filtering walks the relation's rows with the
    /// dense invented mask, and only surviving pairs pay the node-id
    /// translation. Sharded, every stripe evaluates its own rows on a
    /// [`par::try_map_shards`] worker into a **sorted run**, and the runs
    /// union through the streaming k-way merge
    /// ([`gde_datagraph::merge`]) — no intermediate concatenation, and
    /// the result is identical either way.
    ///
    /// A panicking stripe worker surfaces as
    /// [`ServeError::StripePanicked`]; a fired deadline/cancel control as
    /// [`ServeError::DeadlineExceeded`] / [`ServeError::Cancelled`]. In
    /// both cases nothing incomplete was inserted into the sub-relation
    /// cache.
    fn answers_over_dom(
        &self,
        q: &CompiledQuery,
        ctrl: &Arc<EvalControl>,
        use_cache: bool,
    ) -> Result<Vec<(NodeId, NodeId)>, ServeError> {
        match &self.sharded {
            None => {
                if ctrl.should_stop() {
                    let cause = ctrl
                        .fired()
                        .expect("invariant: should_stop latched a cause");
                    return Err(stop_error(cause, 0, 1));
                }
                let started = Instant::now();
                let mut pairs = self.dom_pairs(&q.eval_relation(&self.snapshot));
                pairs.sort();
                self.record(0, started.elapsed(), pairs.len(), false);
                Ok(pairs)
            }
            Some(ss) => {
                // phase 1 (memo/cache build) runs before the fan-out so
                // stripe workers never serialize on it
                let shared = self.row_shared_with(ctrl, use_cache);
                let prewarm = Instant::now();
                q.prewarm_rows(ss, &shared);
                let memo_ns = prewarm.elapsed().as_nanos() as u64;
                let completed = AtomicUsize::new(0);
                let parts = par::try_map_shards(&ss.plan().ranges(), |shard, _| {
                    if ctrl.should_stop() {
                        return Vec::new();
                    }
                    let run = self.shard_pairs(q, shard, &shared);
                    completed.fetch_add(1, Ordering::Relaxed);
                    run
                });
                // stats stay consistent whatever the outcome — partial
                // work is recorded, fabricated results are not
                self.record_overheads(memo_ns, 0, &shared);
                let parts = parts.map_err(panic_error)?;
                if let Some(cause) = ctrl.fired() {
                    return Err(stop_error(
                        cause,
                        completed.load(Ordering::Relaxed),
                        ss.shard_count(),
                    ));
                }
                let merge = Instant::now();
                let merged = merge_sorted_runs(&parts);
                lock(&self.serving).merge_ns += merge.elapsed().as_nanos() as u64;
                Ok(merged)
            }
        }
    }

    /// The dom-filter-and-translate pipeline shared by the sharded and
    /// unsharded tuple paths — one implementation so they cannot diverge.
    fn dom_pairs(&self, rel: &gde_datagraph::Relation) -> Vec<(NodeId, NodeId)> {
        let mask = &self.invented_mask;
        rel.iter_pairs()
            .filter(|&(i, j)| !mask[i] && !mask[j])
            .map(|(i, j)| (self.snapshot.id_at(i as u32), self.snapshot.id_at(j as u32)))
            .collect()
    }

    /// One stripe's dom-filtered pairs as a **sorted run** — the unit
    /// sharded batch serving schedules, and the input shape of the
    /// streaming k-way merge. Also records the stripe's evaluation time
    /// and result cardinality into the serving stats.
    ///
    /// The stripe's evaluated relation is served through the
    /// sub-relation cache under `(generation, stripe, plan hash)`, so a
    /// repeated query (same structure, same generation) skips evaluation
    /// entirely and goes straight to dom-filter + sort. The key carries
    /// the **mapping** generation, not the stripe's stamp: a stripe's
    /// answer rows depend on the whole graph, so any delta must miss.
    fn shard_pairs(
        &self,
        q: &CompiledQuery,
        shard: usize,
        shared: &RowEvalShared,
    ) -> Vec<(NodeId, NodeId)> {
        // an injected panic here models a stripe worker dying at the top
        // of its evaluation, before any shared state is touched
        faults::point(FaultSite::StripeEval);
        let ss = self
            .sharded
            .as_ref()
            .expect("invariant: sharded serving only");
        let started = Instant::now();
        let ctrl = shared.control();
        let rel = match shared.cache() {
            Some(h) => {
                let key = SubRelKey::stripe(h.generation(), shard, q.plan_hash())
                    .with_binding(q.binding_hash());
                match h.lookup(&key) {
                    Some(rel) => rel,
                    None => {
                        let rel = Arc::new(q.eval_relation_rows(ss, shard, shared));
                        // a control that fired mid-evaluation may have
                        // truncated sub-factors: the relation is garbage
                        // by design and must never reach the cache — the
                        // caller discards it via `fired()`
                        if ctrl.should_stop() {
                            return Vec::new();
                        }
                        h.insert(key, rel.clone());
                        rel
                    }
                }
            }
            None => {
                let rel = Arc::new(q.eval_relation_rows(ss, shard, shared));
                if ctrl.should_stop() {
                    return Vec::new();
                }
                rel
            }
        };
        let mut pairs = self.dom_pairs(&rel);
        pairs.sort();
        self.record(shard, started.elapsed(), pairs.len(), false);
        pairs
    }

    /// One stripe's Boolean evaluation, with stats recording (the Boolean
    /// counterpart of [`PreparedSolution::shard_pairs`]).
    fn shard_holds(&self, q: &CompiledQuery, shard: usize, shared: &RowEvalShared) -> bool {
        faults::point(FaultSite::StripeEval);
        let ss = self
            .sharded
            .as_ref()
            .expect("invariant: sharded serving only");
        let started = Instant::now();
        let holds = q.holds_in_rows(ss, shard, shared);
        self.record(shard, started.elapsed(), 0, true);
        holds
    }

    /// Boolean projection: does the query hold anywhere? Sharded, stripes
    /// evaluate concurrently and OR-merge with a short-circuit flag (a
    /// stripe that finds a match stops the others from starting).
    ///
    /// Because Boolean certain answers are monotone across stripes, a
    /// short-circuit hit found *before* a deadline/cancel fired is still
    /// a definitive `true` and is returned instead of the stop error.
    fn holds(
        &self,
        q: &CompiledQuery,
        ctrl: &Arc<EvalControl>,
        use_cache: bool,
    ) -> Result<bool, ServeError> {
        match &self.sharded {
            None => {
                if ctrl.should_stop() {
                    let cause = ctrl
                        .fired()
                        .expect("invariant: should_stop latched a cause");
                    return Err(stop_error(cause, 0, 1));
                }
                let started = Instant::now();
                let holds = q.holds_somewhere(&self.snapshot);
                self.record(0, started.elapsed(), 0, true);
                Ok(holds)
            }
            Some(ss) => {
                // Boolean stripes stay uncached (no reusable relation is
                // produced) but still share phase-1 artifacts through
                // the cache, built before the fan-out
                let shared = self.row_shared_with(ctrl, use_cache);
                let prewarm = Instant::now();
                q.prewarm_rows(ss, &shared);
                let memo_ns = prewarm.elapsed().as_nanos() as u64;
                let found = AtomicBool::new(false);
                let completed = AtomicUsize::new(0);
                let fanned = par::try_map_shards(&ss.plan().ranges(), |shard, _| {
                    if found.load(Ordering::Relaxed) || ctrl.should_stop() {
                        return;
                    }
                    if self.shard_holds(q, shard, &shared) {
                        found.store(true, Ordering::Relaxed);
                    }
                    completed.fetch_add(1, Ordering::Relaxed);
                });
                self.record_overheads(memo_ns, 0, &shared);
                fanned.map_err(panic_error)?;
                if found.load(Ordering::Relaxed) {
                    return Ok(true);
                }
                if let Some(cause) = ctrl.fired() {
                    return Err(stop_error(
                        cause,
                        completed.load(Ordering::Relaxed),
                        ss.shard_count(),
                    ));
                }
                Ok(false)
            }
        }
    }
}

/// The two canonical-solution flavours a mapping can be served from.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
enum Flavour {
    Universal = 0,
    LeastInformative = 1,
}

/// Cache slot state for one `(mapping, flavour)`.
#[derive(Debug, Default)]
enum SlotState {
    /// Nothing cached; the next answer builds from the source graph.
    #[default]
    Empty,
    /// A delta-patched solution whose snapshot is re-frozen lazily on the
    /// next answer — incrementally, when the carry allows it.
    Patched {
        sol: Box<CanonicalSolution>,
        carry: Option<RefreezeCarry>,
    },
    /// Fully frozen and servable.
    Ready(Arc<PreparedSolution>),
    /// Building failed; the error is replayed (NoSolution ⇒ vacuous
    /// answers, NotRelational ⇒ error).
    Failed(SolutionError),
}

#[derive(Debug, Default)]
struct Slot {
    state: SlotState,
    /// Generation the state was computed at.
    generation: u64,
    /// LRU tick of the last serve from this slot.
    last_used: u64,
    /// Bytes charged against the service budget (0 unless resident).
    bytes: usize,
}

/// One registered mapping: shared graphs, generation stamp, shard
/// configuration, and the per-flavour solution cache.
struct MappingEntry {
    id: MappingId,
    gsm: Arc<Gsm>,
    /// The mapping actually served from: `gsm` minus statically dead and
    /// subsumed rules once a workload is registered (recomputed whenever
    /// the workload grows; answer-equivalent to `gsm` for every covered
    /// query). Lock order: `cache` before `serve_gsm`.
    serve_gsm: RwLock<Arc<Gsm>>,
    /// The accumulated query workload: labels read and nullability, from
    /// [`MappingService::register_queries`] plus every query served while
    /// a workload is active. Lock order: `workload` before `cache`.
    workload: Mutex<WorkloadProfile>,
    /// Graph-independent facts about the **full** mapping (producible
    /// labels, always-solvable), computed once at registration — the
    /// substrate of the statically-empty short-circuit.
    facts: MappingFacts,
    source: RwLock<Arc<DataGraph>>,
    generation: AtomicU64,
    /// Encoded [`ShardSpec`]: the stripe count the mapping's prepared
    /// solutions are partitioned into (1 = unsharded, [`AUTO_SHARDS`] =
    /// engine-picked).
    shards: AtomicUsize,
    cache: Mutex<[Slot; 2]>,
    /// Per-(query, stripe) serving statistics, shared with every
    /// [`PreparedSolution`] built for this mapping so recording needs no
    /// registry access. Survives evictions and shard-count changes.
    serving: Arc<Mutex<ServingStats>>,
    /// Interned query templates, keyed by skeleton hash: one compiled
    /// artifact per canonical query shape, shared by `answer_bound` and
    /// by canonicalisation-routed ad-hoc serves. Survives evictions,
    /// deltas and shard-count changes (templates are graph-independent).
    templates: Mutex<FxHashMap<u128, Arc<QueryTemplate>>>,
}

/// The owned, concurrent serving engine. See the module docs for the
/// lifecycle; see [`MappingService::answer`] for the unified entry point.
#[derive(Default)]
pub struct MappingService {
    registry: RwLock<FxHashMap<MappingId, Arc<MappingEntry>>>,
    next_id: AtomicU64,
    /// Monotonic LRU clock; bumped on every serve/build.
    clock: AtomicU64,
    /// Cache budget in bytes; 0 = unlimited.
    budget: AtomicUsize,
    /// Approximate bytes currently resident.
    cached: AtomicUsize,
    /// Whether additive LAV deltas patch caches in place (default true).
    patching_off: AtomicBool,
    /// Whether statically dead/subsumed rules are pruned from the served
    /// mapping once a workload is registered (default true; see
    /// [`MappingService::set_rule_pruning`]).
    pruning_off: AtomicBool,
    /// Whether ad-hoc `answer`/`answer_batch` queries are routed through
    /// canonicalisation onto shared templates (default true; see
    /// [`MappingService::set_canonicalisation`]).
    canon_off: AtomicBool,
    evictions: AtomicU64,
    patched_deltas: AtomicU64,
    invalidating_deltas: AtomicU64,
}

// The whole point of the owned engine: one service instance, many serving
// threads.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<MappingService>();
};

impl MappingService {
    /// An empty service with an unlimited cache budget.
    pub fn new() -> MappingService {
        MappingService::default()
    }

    /// An empty service with a cache budget (approximate bytes; see
    /// [`MappingService::set_cache_budget`]).
    pub fn with_cache_budget(bytes: usize) -> MappingService {
        let s = MappingService::new();
        s.set_cache_budget(bytes);
        s
    }

    /// Bound the resident prepared-solution cache to approximately `bytes`
    /// ([`PreparedSolution::approx_bytes`]); least-recently-served
    /// solutions are evicted first. `0` = unlimited. The budget is soft:
    /// the solution serving the current answer is never evicted, so one
    /// resident solution can exceed a tiny budget.
    pub fn set_cache_budget(&self, bytes: usize) {
        self.budget.store(bytes, Ordering::Relaxed);
        self.enforce_budget(None);
    }

    /// The configured cache budget (0 = unlimited).
    pub fn cache_budget(&self) -> usize {
        self.budget.load(Ordering::Relaxed)
    }

    /// Approximate bytes currently held by cached solutions.
    pub fn cached_bytes(&self) -> usize {
        self.cached.load(Ordering::Relaxed)
    }

    /// Enable/disable in-place delta patching (on by default). With
    /// patching off every delta invalidates the mapping's cached solutions
    /// — the full-rebuild baseline the `service_churn` bench compares
    /// against.
    pub fn set_delta_patching(&self, on: bool) {
        self.patching_off.store(!on, Ordering::Relaxed);
    }

    /// Register a mapping with its source graph. Accepts owned values or
    /// `Arc`s (graphs are shared, never copied). Registration is free; the
    /// first answer per flavour builds the canonical solution.
    pub fn register(
        &self,
        gsm: impl Into<Arc<Gsm>>,
        source: impl Into<Arc<DataGraph>>,
    ) -> MappingId {
        let id = MappingId(self.next_id.fetch_add(1, Ordering::Relaxed) + 1);
        let gsm: Arc<Gsm> = gsm.into();
        let facts = MappingFacts::of(&gsm);
        let entry = Arc::new(MappingEntry {
            id,
            serve_gsm: RwLock::new(gsm.clone()),
            workload: Mutex::new(WorkloadProfile::new()),
            facts,
            gsm,
            source: RwLock::new(source.into()),
            generation: AtomicU64::new(0),
            shards: AtomicUsize::new(1),
            cache: Mutex::new(Default::default()),
            serving: Arc::new(Mutex::new(ServingStats::default())),
            templates: Mutex::new(FxHashMap::default()),
        });
        write(&self.registry).insert(id, entry);
        id
    }

    /// Partition this mapping's prepared solutions into node-range
    /// stripes. Accepts a plain count (`0`/`1` = unsharded) or
    /// [`ShardSpec::Auto`], which picks K per mapping from the graph
    /// size, the thread budget, and the observed serving stats. Answers
    /// evaluate per stripe on [`gde_datagraph::par`] workers and merge —
    /// a streaming k-way union for tuple mode, OR-short-circuit for
    /// Boolean — and deltas invalidate per stripe instead of per mapping.
    /// Changing the spec drops resident frozen solutions (they re-prepare
    /// under the new stripe layout on the next answer); answers are
    /// byte-identical at every `k`, `Auto` included.
    pub fn set_shard_count(
        &self,
        id: MappingId,
        k: impl Into<ShardSpec>,
    ) -> Result<(), ServeError> {
        let entry = self.entry(id)?;
        let enc = k.into().encode();
        if entry.shards.swap(enc, Ordering::Relaxed) != enc {
            let mut slots = lock(&entry.cache);
            for slot in slots.iter_mut() {
                self.release(slot);
            }
        }
        Ok(())
    }

    /// The stripe count a mapping currently serves from (1 = unsharded).
    /// Under [`ShardSpec::Auto`] this is the pick the next preparation
    /// would use; it can drift as serving statistics accrue.
    pub fn shard_count(&self, id: MappingId) -> Option<usize> {
        let entry = read(&self.registry).get(&id).cloned()?;
        Some(self.resolve_shards(&entry))
    }

    /// The configured [`ShardSpec`] for a mapping.
    pub fn shard_spec(&self, id: MappingId) -> Option<ShardSpec> {
        read(&self.registry)
            .get(&id)
            .map(|e| ShardSpec::decode(e.shards.load(Ordering::Relaxed)))
    }

    /// The cumulative serving statistics recorded for a mapping: one
    /// entry per (query, stripe) evaluation, aggregated and split by
    /// stripe. See [`ServingStats`].
    pub fn serving_stats(&self, id: MappingId) -> Option<ServingStats> {
        read(&self.registry)
            .get(&id)
            .map(|e| lock(&e.serving).clone())
    }

    /// Label a mapping's serving statistics with the tenant namespace it
    /// serves under. The label rides along on every
    /// [`MappingService::serving_stats`] clone, and
    /// [`ServingStats::absorb`] refuses to fold stats across different
    /// labels — so a multi-tenant front-end aggregating per tenant can
    /// never bleed one tenant's counters into another's report.
    pub fn set_tenant_label(&self, id: MappingId, tenant: &str) -> Result<(), ServeError> {
        let entry = self.entry(id)?;
        lock(&entry.serving).tenant = tenant.to_string();
        Ok(())
    }

    /// The tenant label set by [`MappingService::set_tenant_label`]
    /// (empty when the mapping is unlabelled).
    pub fn tenant_label(&self, id: MappingId) -> Option<String> {
        read(&self.registry)
            .get(&id)
            .map(|e| lock(&e.serving).tenant.clone())
    }

    /// Register the query workload a mapping will serve: folds every
    /// query's labels and nullability into the mapping's workload
    /// profile and (unless [`MappingService::set_rule_pruning`] turned it
    /// off) recomputes the served mapping — statically dead and subsumed
    /// rules are dropped, so the next preparation builds a smaller
    /// canonical solution. Sound for every registered query; a later
    /// *uncovered* query (new labels, or the first nullable one)
    /// auto-extends the workload and rebuilds, so answers are always
    /// byte-identical to serving the full mapping.
    pub fn register_queries(
        &self,
        id: MappingId,
        queries: &[CompiledQuery],
    ) -> Result<(), ServeError> {
        let entry = self.entry(id)?;
        let mut changed = false;
        {
            let mut w = lock(&entry.workload);
            for q in queries {
                changed |= w.extend_with(q.shape());
            }
            // first registration activates pruning even when the queries
            // add no new labels (e.g. an empty slice after a non-empty one)
            changed |= !queries.is_empty();
        }
        if changed {
            self.reprune(&entry);
        }
        Ok(())
    }

    /// Run the static analyzer on a mapping: rule dependency graph, dead
    /// and subsumed rules (against the registered workload plus
    /// `queries`), per-query statically-empty verdicts, and — when a
    /// universal prepared solution is resident — cardinality estimates
    /// and closure hazards from its snapshot's label densities. Pure
    /// inspection: nothing is built, pruned, or invalidated.
    pub fn analyze(
        &self,
        id: MappingId,
        queries: &[CompiledQuery],
    ) -> Result<MappingReport, ServeError> {
        let entry = self.entry(id)?;
        let base = lock(&entry.workload).clone();
        let snap = {
            let slots = lock(&entry.cache);
            match &slots[Flavour::Universal as usize].state {
                SlotState::Ready(p) => Some(p.snapshot.clone()),
                _ => None,
            }
        };
        let qrefs: Vec<&CompiledQuery> = queries.iter().collect();
        Ok(analyze::analyze_mapping_with(
            &entry.gsm,
            &qrefs,
            base,
            snap.as_deref(),
        ))
    }

    /// Enable/disable rule pruning (on by default): whether registering a
    /// workload drops statically dead and subsumed rules from the served
    /// mapping. Toggling recomputes every mapping's served rules and
    /// evicts solutions built under the previous setting — answers are
    /// byte-identical either way; only `approx_bytes` and build work
    /// change.
    pub fn set_rule_pruning(&self, on: bool) {
        self.pruning_off.store(!on, Ordering::Relaxed);
        let entries: Vec<Arc<MappingEntry>> = read(&self.registry).values().cloned().collect();
        for e in entries {
            self.reprune(&e);
        }
    }

    /// Enable/disable transparent canonicalisation of ad-hoc queries (on
    /// by default): whether [`MappingService::answer`] /
    /// [`MappingService::answer_batch`] normalise each query onto its
    /// canonical skeleton so alpha-equivalent variants share one interned
    /// template — one compilation, one set of cached stripe answers.
    /// Answers are byte-identical either way (canonicalisation preserves
    /// the query's language); only compilation work and cache identity
    /// change. Explicit [`MappingService::answer_bound`] serves are
    /// unaffected by the toggle.
    pub fn set_canonicalisation(&self, on: bool) {
        self.canon_off.store(!on, Ordering::Relaxed);
    }

    /// The mapping the service actually serves from: the registered one,
    /// minus statically dead / subsumed rules once a workload is
    /// registered (see [`MappingService::register_queries`]).
    pub fn serve_gsm(&self, id: MappingId) -> Option<Arc<Gsm>> {
        read(&self.registry)
            .get(&id)
            .map(|e| read(&e.serve_gsm).clone())
    }

    /// Recompute a mapping's served rule set from its workload profile
    /// and the pruning toggle; on change, drop resident solutions and
    /// bump the generation so every stale cache key dies with them.
    fn reprune(&self, entry: &MappingEntry) {
        let target: Arc<Gsm> = if self.pruning_off.load(Ordering::Relaxed) {
            entry.gsm.clone()
        } else {
            let profile = lock(&entry.workload).clone();
            if profile.is_empty() {
                entry.gsm.clone()
            } else {
                analyze::pruned_gsm(&entry.gsm, &profile)
                    .map(Arc::new)
                    .unwrap_or_else(|| entry.gsm.clone())
            }
        };
        // lock order: cache, then serve_gsm (prepared()/apply_delta read
        // serve_gsm while holding the cache lock)
        let mut slots = lock(&entry.cache);
        let mut cur = write(&entry.serve_gsm);
        if cur.rules() == target.rules() {
            return;
        }
        *cur = target;
        for slot in slots.iter_mut() {
            self.release(slot);
        }
        entry.generation.fetch_add(1, Ordering::AcqRel);
    }

    /// Guarantee the workload profile covers these queries before they
    /// are served from a (possibly pruned) mapping: uncovered queries
    /// extend the profile and trigger a reprune, so dead-rule pruning can
    /// never drop a rule some served query actually needs. No-op until a
    /// workload is registered (the full mapping covers everything).
    fn ensure_covered<'q>(
        &self,
        entry: &MappingEntry,
        queries: impl IntoIterator<Item = &'q CompiledQuery>,
    ) {
        let mut grew = false;
        {
            let mut w = lock(&entry.workload);
            if w.is_empty() {
                return;
            }
            for q in queries {
                if !w.covers(q.shape()) {
                    grew |= w.extend_with(q.shape());
                }
            }
        }
        if grew {
            self.reprune(entry);
        }
    }

    /// Resolve a mapping's encoded [`ShardSpec`] to a concrete stripe
    /// count (the [`auto_shard_count`] policy for `Auto`).
    fn resolve_shards(&self, entry: &MappingEntry) -> usize {
        match entry.shards.load(Ordering::Relaxed) {
            AUTO_SHARDS => {
                let nodes = read(&entry.source).node_count();
                let stats = lock(&entry.serving).clone();
                auto_shard_count(nodes, par::max_threads(), &stats)
            }
            k => k,
        }
    }

    /// Drop a mapping and its cached solutions. Returns `false` for
    /// unknown ids.
    pub fn unregister(&self, id: MappingId) -> bool {
        let entry = write(&self.registry).remove(&id);
        match entry {
            Some(e) => {
                let mut slots = lock(&e.cache);
                for slot in slots.iter_mut() {
                    self.release(slot);
                }
                true
            }
            None => false,
        }
    }

    /// Number of registered mappings.
    pub fn mapping_count(&self) -> usize {
        read(&self.registry).len()
    }

    /// The mapping behind an id.
    pub fn gsm(&self, id: MappingId) -> Option<Arc<Gsm>> {
        read(&self.registry).get(&id).map(|e| e.gsm.clone())
    }

    /// The current source graph behind an id (a point-in-time `Arc`;
    /// later deltas copy-on-write and do not affect it).
    pub fn source(&self, id: MappingId) -> Option<Arc<DataGraph>> {
        read(&self.registry)
            .get(&id)
            .map(|e| read(&e.source).clone())
    }

    /// The mapping's generation stamp: 0 at registration, +1 per
    /// state-changing delta. Answers are always served from a solution of
    /// the current generation.
    pub fn generation(&self, id: MappingId) -> Option<u64> {
        read(&self.registry)
            .get(&id)
            .map(|e| e.generation.load(Ordering::Acquire))
    }

    /// Is a fully frozen, current-generation solution resident for this
    /// semantics' flavour right now?
    pub fn is_cached(&self, id: MappingId, sem: Semantics) -> bool {
        match self.entry(id) {
            Ok(e) => {
                let slots = lock(&e.cache);
                let slot = &slots[sem.flavour() as usize];
                matches!(slot.state, SlotState::Ready(_))
                    && slot.generation == e.generation.load(Ordering::Acquire)
            }
            Err(_) => false,
        }
    }

    /// Service-wide counters.
    pub fn stats(&self) -> ServiceStats {
        let entries: Vec<Arc<MappingEntry>> = read(&self.registry).values().cloned().collect();
        let mut cached_solutions = 0;
        for e in &entries {
            let slots = lock(&e.cache);
            cached_solutions += slots.iter().filter(|s| s.bytes > 0).count();
        }
        ServiceStats {
            mappings: entries.len(),
            cached_solutions,
            cached_bytes: self.cached_bytes(),
            evictions: self.evictions.load(Ordering::Relaxed),
            patched_deltas: self.patched_deltas.load(Ordering::Relaxed),
            invalidating_deltas: self.invalidating_deltas.load(Ordering::Relaxed),
        }
    }

    /// Drop every cached solution (registrations stay).
    pub fn evict_all(&self) {
        let entries: Vec<Arc<MappingEntry>> = read(&self.registry).values().cloned().collect();
        for e in entries {
            let mut slots = lock(&e.cache);
            for slot in slots.iter_mut() {
                self.release(slot);
            }
        }
    }

    /// The unified serving entry point: answer `q` on mapping `id` under
    /// the chosen [`Semantics`]. Solutions and snapshots are cached per
    /// `(mapping, flavour)` and reused across calls, flavours and threads.
    ///
    /// Mappings with no solution at all (ε-rule conflicts) make every
    /// answer vacuously certain: `Tuples(AllVacuously)` / `Boolean(true)`.
    ///
    /// Equivalent to [`MappingService::answer_with`] under unbounded
    /// [`ServeOptions`] (no deadline, never cancelled).
    pub fn answer(
        &self,
        id: MappingId,
        q: &CompiledQuery,
        sem: Semantics,
    ) -> Result<Answer, ServeError> {
        self.answer_with(id, q, sem, &ServeOptions::default())
    }

    /// [`MappingService::answer`] under per-call [`ServeOptions`]: an
    /// optional cooperative deadline and a caller-owned cancel flag.
    ///
    /// Fault isolation applies on every path: a panicking stripe worker
    /// is contained, the flavour's prepared solution is quarantined
    /// (slot dropped, generation bumped so no poisoned cache entry can
    /// ever serve again), and the serve retries once against a fresh
    /// rebuild — a second panic surfaces as
    /// [`ServeError::StripePanicked`]. Deadline/cancel expiry returns
    /// [`ServeError::DeadlineExceeded`] / [`ServeError::Cancelled`]
    /// without quarantining anything; a retry recomputes from consistent
    /// caches and returns byte-identical answers.
    pub fn answer_with(
        &self,
        id: MappingId,
        q: &CompiledQuery,
        sem: Semantics,
        opts: &ServeOptions,
    ) -> Result<Answer, ServeError> {
        let entry = self.entry(id)?;
        let ctrl = Arc::new(opts.control());
        match self.route_template(&entry, q) {
            Some(bound) => self.answer_entry(&entry, &bound, sem, &ctrl),
            None => self.answer_entry(&entry, q, sem, &ctrl),
        }
    }

    /// Intern a prepared-statement template for this mapping: the
    /// skeleton compiles **once** (Thompson/NFA construction,
    /// register-automaton lowering, plan analysis) and every subsequent
    /// [`MappingService::answer_bound`] serves from the shared artifact.
    /// Idempotent — re-registering an identical skeleton returns the
    /// same [`TemplateId`] without recompiling. Templates are
    /// graph-independent: they survive deltas, evictions and shard-count
    /// changes.
    pub fn register_template(
        &self,
        id: MappingId,
        skeleton: &PlanSkeleton,
    ) -> Result<TemplateId, ServeError> {
        let entry = self.entry(id)?;
        let hash = skeleton.hash();
        if lock(&entry.templates).contains_key(&hash) {
            return Ok(TemplateId(hash));
        }
        // compile outside the lock; racing registrations build identical
        // templates and the first insert wins
        let built = Arc::new(QueryTemplate::new(skeleton.clone()));
        lock(&entry.templates).entry(hash).or_insert(built);
        Ok(TemplateId(hash))
    }

    /// Serve a bound instance of an interned template: no query
    /// compilation happens on this path — the template's precompiled
    /// artifact is label-rewritten through `bindings` (memoised per
    /// binding vector, so a repeat binding is an `Arc` clone) and served
    /// like any compiled query. The bound instance's cache identity is
    /// `(skeleton hash, binding hash)`, so repeat bindings hit the
    /// sub-relation cache stripes their earlier serves populated.
    pub fn answer_bound(
        &self,
        id: MappingId,
        template: TemplateId,
        bindings: &[Label],
        sem: Semantics,
    ) -> Result<Answer, ServeError> {
        self.answer_bound_with(id, template, bindings, sem, &ServeOptions::default())
    }

    /// [`MappingService::answer_bound`] under per-call [`ServeOptions`]
    /// (deadline/cancel), with the same fault isolation as
    /// [`MappingService::answer_with`].
    pub fn answer_bound_with(
        &self,
        id: MappingId,
        template: TemplateId,
        bindings: &[Label],
        sem: Semantics,
        opts: &ServeOptions,
    ) -> Result<Answer, ServeError> {
        let entry = self.entry(id)?;
        let tpl = lock(&entry.templates)
            .get(&template.0)
            .cloned()
            .ok_or(ServeError::UnknownTemplate(template))?;
        let bound = tpl.bind_shared(bindings).map_err(|e| match e {
            BindError::Arity { expected, got } => ServeError::BindingArity { expected, got },
        })?;
        Self::note(&entry, |s| {
            s.template_hits += 1;
            s.compile_skipped_ns += tpl.compile_ns();
        });
        let ctrl = Arc::new(opts.control());
        self.answer_entry(&entry, &bound, sem, &ctrl)
    }

    /// Route an ad-hoc query onto its interned template: canonicalise
    /// the source, intern the skeleton's template (compiling it on first
    /// encounter), bind the lifted labels back in. Returns `None` when
    /// canonicalisation is off or the query is already template-bound
    /// (binding discriminant ≠ 0) — re-routing a bound instance would
    /// only rediscover its own skeleton. Template *hits* (and the
    /// compile work they skipped) are recorded only when the skeleton
    /// was already interned — the first encounter pays the compile.
    fn route_template(
        &self,
        entry: &MappingEntry,
        q: &CompiledQuery,
    ) -> Option<Arc<CompiledQuery>> {
        if self.canon_off.load(Ordering::Relaxed) || q.binding_hash() != 0 {
            return None;
        }
        let (skeleton, bindings) = canonicalize(q.source());
        let hash = skeleton.hash();
        let existing = lock(&entry.templates).get(&hash).cloned();
        let (template, hit) = match existing {
            Some(t) => (t, true),
            None => {
                let built = Arc::new(QueryTemplate::new(skeleton));
                let mut templates = lock(&entry.templates);
                let t = Arc::clone(templates.entry(hash).or_insert(built));
                (t, false)
            }
        };
        if hit {
            Self::note(entry, |s| {
                s.template_hits += 1;
                s.compile_skipped_ns += template.compile_ns();
            });
        }
        let bound = template
            .bind_shared(bindings.labels())
            .expect("invariant: canonical bindings match their skeleton's arity");
        Some(bound)
    }

    /// Answer a whole batch under one semantics, fanning out over
    /// [`gde_datagraph::par`] scoped workers (bounded by
    /// `par::set_max_threads` / `GDE_MAX_THREADS`). Results come back in
    /// input order; per-query errors don't abort the batch.
    ///
    /// When the mapping is sharded ([`MappingService::set_shard_count`])
    /// the scheduling unit is a `(query, stripe)` task instead of a whole
    /// query: workers claim tasks dynamically (stripe-major, so one
    /// query's stripes land on different workers), partial answers merge
    /// per query — union for tuples, OR with cross-stripe short-circuit
    /// for Booleans — and heavy queries no longer pin a whole worker for
    /// their full duration.
    pub fn answer_batch(
        &self,
        id: MappingId,
        queries: &[CompiledQuery],
        sem: Semantics,
    ) -> Vec<Result<Answer, ServeError>> {
        self.answer_batch_with(id, queries, sem, &ServeOptions::default())
    }

    /// [`MappingService::answer_batch`] under per-call [`ServeOptions`]:
    /// one deadline/cancel control governs the whole batch. A fired
    /// control stops the `(query, stripe)` scheduler cooperatively and
    /// every query returns the stop error; nothing incomplete is cached
    /// or half-recorded, so retrying the batch returns byte-identical
    /// answers. A panicking worker quarantines the flavour and the whole
    /// batch retries once against the rebuilt solution.
    pub fn answer_batch_with(
        &self,
        id: MappingId,
        queries: &[CompiledQuery],
        sem: Semantics,
        opts: &ServeOptions,
    ) -> Vec<Result<Answer, ServeError>> {
        let entry = match self.entry(id) {
            Ok(e) => e,
            Err(e) => return queries.iter().map(|_| Err(e.clone())).collect(),
        };
        let ctrl = Arc::new(opts.control());
        if ctrl.should_stop() {
            let cause = ctrl
                .fired()
                .expect("invariant: should_stop latched a cause");
            Self::note(&entry, |s| s.rejected += queries.len() as u64);
            return queries
                .iter()
                .map(|_| Err(stop_error(cause, 0, 0)))
                .collect();
        }
        // canonicalisation routing: each ad-hoc query is replaced by the
        // bound instance of its interned template, so alpha-equivalent
        // batch members share one plan and its cached stripes (answers
        // are byte-identical — routing preserves the query's language)
        let routed: Option<Vec<CompiledQuery>> = if self.canon_off.load(Ordering::Relaxed) {
            None
        } else {
            Some(
                queries
                    .iter()
                    .map(|q| match self.route_template(&entry, q) {
                        Some(bound) => (*bound).clone(),
                        None => q.clone(),
                    })
                    .collect(),
            )
        };
        let queries: &[CompiledQuery] = routed.as_deref().unwrap_or(queries);
        // cover the evaluated queries up front so one reprune-and-rebuild
        // serves the whole batch (statically-empty queries never touch
        // the solution and don't constrain pruning)
        self.ensure_covered(
            &entry,
            queries
                .iter()
                .filter(|q| !analyze::statically_empty(q.shape(), &entry.facts)),
        );
        let mut last_err: Option<ServeError> = None;
        for attempt in 0..2 {
            // warm the flavour once so workers don't serialize on the
            // build; a panic mid-(re)freeze is contained like any other
            let outcome = catch_unwind(AssertUnwindSafe(|| {
                let prep = self.prepared(&entry, sem.flavour());
                // the exact enumeration doesn't decompose by stripe: keep
                // per-query scheduling for it (and for unsharded mappings)
                let sharded = match (&prep, sem) {
                    (Ok(p), Semantics::Nulls(_) | Semantics::LeastInformative(_))
                        if p.sharded.is_some() =>
                    {
                        Some(p.clone())
                    }
                    _ => None,
                };
                match sharded {
                    // per-query fallback: answer_entry contains its own
                    // panics and applies its own quarantine/retry
                    None => Ok(par::map_blocks(queries.len(), 1, |range| {
                        range
                            .map(|i| self.answer_entry(&entry, &queries[i], sem, &ctrl))
                            .collect::<Vec<_>>()
                    })
                    .into_iter()
                    .flatten()
                    .collect()),
                    Some(prep) => self.batch_sharded(&entry, &prep, queries, sem, &ctrl),
                }
            }));
            let err = match outcome {
                Ok(Ok(answers)) => return answers,
                Ok(Err(e)) => e,
                Err(payload) => ServeError::StripePanicked {
                    message: par::panic_message(&*payload),
                    stripes: Vec::new(),
                },
            };
            let panics = match &err {
                ServeError::StripePanicked { stripes, .. } => stripes.len().max(1) as u64,
                _ => 1,
            };
            Self::note(&entry, |s| s.worker_panics += panics);
            self.quarantine(&entry, sem.flavour());
            if attempt == 0 {
                Self::note(&entry, |s| s.retries += 1);
            }
            last_err = Some(err);
        }
        let err = last_err.expect("invariant: two attempts ran");
        queries.iter().map(|_| Err(err.clone())).collect()
    }

    /// The sharded `(query, stripe)` scheduler behind
    /// [`MappingService::answer_batch_with`]. Returns `Err` only for a
    /// contained worker panic (the caller quarantines and retries);
    /// deadline/cancel outcomes are encoded per query in the `Ok` vec.
    fn batch_sharded(
        &self,
        entry: &MappingEntry,
        prep: &Arc<PreparedSolution>,
        queries: &[CompiledQuery],
        sem: Semantics,
        ctrl: &Arc<EvalControl>,
    ) -> Result<Vec<Result<Answer, ServeError>>, ServeError> {
        let nq = queries.len();
        let k = prep.shard_count();
        let pre: Vec<Result<(), ServeError>> =
            queries.iter().map(|q| check_fragment(q, sem)).collect();
        // statically-empty pre-pass: these queries get their empty answer
        // without a single (query, stripe) task, prewarm, or cache touch
        let empty: Vec<bool> = queries
            .iter()
            .map(|q| analyze::statically_empty(q.shape(), &entry.facts))
            .collect();
        let n_empty = (0..nq).filter(|&i| pre[i].is_ok() && empty[i]).count() as u64;
        if n_empty > 0 {
            Self::note(entry, |s| s.static_empty += n_empty);
        }
        let use_cache = self.admit_serve(entry, prep, sem.flavour());
        if !use_cache {
            Self::note(entry, |s| s.degraded += nq as u64);
        }
        let shareds: Vec<RowEvalShared> = queries
            .iter()
            .map(|_| prep.row_shared_with(ctrl, use_cache))
            .collect();
        // factor the batch's phase-1 work out before the stripe fan-out:
        // queries build their memos in parallel, and because every build
        // goes through the shared sub-relation cache, a closure or tail
        // factor two queries have in common is computed once and reused
        // (up to a benign race when structurally identical artifacts
        // build concurrently — both compute, either result serves)
        let ss = prep
            .sharded
            .as_ref()
            .expect("invariant: batch fan-out is sharded");
        let prewarm = Instant::now();
        let warmed = par::try_map_blocks(nq, 1, |range| {
            for qi in range {
                if pre[qi].is_ok() && !empty[qi] && !ctrl.should_stop() {
                    queries[qi].prewarm_rows(ss, &shareds[qi]);
                }
            }
        });
        let memo_ns = prewarm.elapsed().as_nanos() as u64;
        let found: Vec<AtomicBool> = queries.iter().map(|_| AtomicBool::new(false)).collect();
        let completed = AtomicUsize::new(0);
        let fanned = match warmed {
            Ok(_) => par::try_map_tasks(nq * k, |t| {
                // stripe-major order: task t → (query t % nq, stripe t / nq)
                let (qi, shard) = (t % nq, t / nq);
                if pre[qi].is_err() || empty[qi] || ctrl.should_stop() {
                    return None;
                }
                let q = &queries[qi];
                match sem.mode() {
                    Mode::Tuples => {
                        let run = prep.shard_pairs(q, shard, &shareds[qi]);
                        // a fired control truncates runs: drop them here
                        // so the merge below can never see one (the
                        // latched cause short-circuits the whole batch)
                        if ctrl.should_stop() {
                            return None;
                        }
                        completed.fetch_add(1, Ordering::Relaxed);
                        Some(run)
                    }
                    Mode::Boolean => {
                        if !found[qi].load(Ordering::Relaxed)
                            && prep.shard_holds(q, shard, &shareds[qi])
                        {
                            found[qi].store(true, Ordering::Relaxed);
                        }
                        completed.fetch_add(1, Ordering::Relaxed);
                        None
                    }
                }
            }),
            Err(p) => Err(p),
        };
        // record the shared-phase accounting whatever the outcome, so
        // stats stay consistent across faulted and cancelled serves
        let (hits, misses) = shareds.iter().fold((0, 0), |(h, m), s| {
            (h + s.cache_hits(), m + s.cache_misses())
        });
        lock(&prep.serving).record_overheads(
            memo_ns,
            0,
            hits,
            misses,
            prep.sub_cache.bytes() as u64,
        );
        let mut parts: Vec<Option<Vec<(NodeId, NodeId)>>> = fanned.map_err(panic_error)?;
        if let Some(cause) = ctrl.fired() {
            let e = stop_error(cause, completed.load(Ordering::Relaxed), nq * k);
            for _ in 0..nq {
                Self::note_stop(entry, &e);
            }
            return Ok(queries.iter().map(|_| Err(e.clone())).collect());
        }
        let merge = Instant::now();
        let answers: Vec<Result<Answer, ServeError>> = (0..nq)
            .map(|qi| {
                pre[qi].clone()?;
                if empty[qi] {
                    return Ok(empty_answer(sem.mode()));
                }
                Ok(match sem.mode() {
                    Mode::Boolean => Answer::Boolean(found[qi].load(Ordering::Relaxed)),
                    Mode::Tuples => {
                        // per-stripe sorted runs union through the
                        // streaming k-way merge — no intermediate concat
                        let runs: Vec<Vec<(NodeId, NodeId)>> = (0..k)
                            .map(|shard| {
                                parts[shard * nq + qi]
                                    .take()
                                    .expect("invariant: tuple task ran")
                            })
                            .collect();
                        Answer::Tuples(CertainAnswers::Pairs(merge_sorted_runs(&runs)))
                    }
                })
            })
            .collect();
        if sem.mode() == Mode::Tuples {
            lock(&prep.serving).merge_ns += merge.elapsed().as_nanos() as u64;
        }
        Ok(answers)
    }

    /// Eagerly build (or re-freeze) the solution this semantics serves
    /// from. `Ok(true)` when a solution is resident afterwards, `Ok(false)`
    /// when the mapping has no solution at all (answers are vacuous).
    pub fn prepare(&self, id: MappingId, sem: Semantics) -> Result<bool, ServeError> {
        match self.solution(id, sem) {
            Ok(_) => Ok(true),
            Err(ServeError::NoSolution { .. }) => Ok(false),
            Err(e) => Err(e),
        }
    }

    /// The frozen canonical solution this semantics serves from (building
    /// it if needed). Unlike [`MappingService::answer`], a mapping without
    /// solutions surfaces as [`ServeError::NoSolution`] here.
    pub fn solution(
        &self,
        id: MappingId,
        sem: Semantics,
    ) -> Result<Arc<PreparedSolution>, ServeError> {
        let entry = self.entry(id)?;
        self.prepared(&entry, sem.flavour())
            .map_err(ServeError::from)
    }

    /// Apply a batch of source-graph mutations. The owned graph is updated
    /// copy-on-write (previously handed-out `Arc`s keep the old state), the
    /// generation stamp is bumped, and cached solutions are reconciled:
    ///
    /// * under LAV relational mappings, added edges **patch** cached
    ///   solutions in place (one fresh path per new edge and matching
    ///   rule) and bounded edge removals **unpatch** them (the matching
    ///   fresh paths are deleted; see
    ///   [`CanonicalSolution::unpatch_lav_edges`]); an edge added and
    ///   removed by the same delta cancels out. Snapshots re-freeze lazily
    ///   on the next answer — per label, and (sharded) per stripe;
    /// * anything else — non-LAV mappings, id collisions, removals no
    ///   clean fresh path exists for — invalidates the cache and the next
    ///   answer rebuilds from the new source.
    ///
    /// No-op deltas (nothing actually changed) bump nothing.
    pub fn apply_delta(
        &self,
        id: MappingId,
        delta: &GraphDelta,
    ) -> Result<DeltaReport, ServeError> {
        let entry = self.entry(id)?;
        // lock order everywhere: cache, then source
        let mut slots = lock(&entry.cache);
        let applied = {
            let mut src = write(&entry.source);
            Arc::make_mut(&mut src)
                .apply_delta(delta)
                .map_err(ServeError::InvalidDelta)?
        };
        if !applied.changed() {
            return Ok(DeltaReport {
                generation: entry.generation.load(Ordering::Acquire),
                patched: true,
                added_nodes: 0,
                added_edges: 0,
                removed_edges: 0,
            });
        }
        let generation = entry.generation.fetch_add(1, Ordering::AcqRel) + 1;
        let source = read(&entry.source).clone();
        let report = |patched: bool| DeltaReport {
            generation,
            patched,
            added_nodes: applied.added_nodes,
            added_edges: applied.added_edges.len(),
            removed_edges: applied.removed_edges.len(),
        };
        // An edge both added and removed by this delta (adds apply first)
        // is a net no-op for every cached solution; cancel the pair so the
        // patch path reasons about the delta's net effect only.
        let added_set: FxHashSet<_> = applied.added_edges.iter().copied().collect();
        let removed_set: FxHashSet<_> = applied.removed_edges.iter().copied().collect();
        let net_added: Vec<_> = applied
            .added_edges
            .iter()
            .filter(|e| !removed_set.contains(e))
            .copied()
            .collect();
        let net_removed: Vec<_> = applied
            .removed_edges
            .iter()
            .filter(|e| !added_set.contains(e))
            .copied()
            .collect();
        let try_patch = !self.patching_off.load(Ordering::Relaxed);
        // Cached solutions were built from the *served* (possibly pruned)
        // mapping, so patching reasons about that rule set. Pruning
        // decisions are data-independent (rules + workload only), so a
        // delta never invalidates them.
        let serve = read(&entry.serve_gsm).clone();
        // Under a LAV mapping, source answers are exactly the per-label edge
        // sets: changes matching no rule atom leave every cached solution —
        // snapshots included — valid as-is.
        let class = serve.classify();
        let matches_rule = |&(_, l, _): &(NodeId, Label, NodeId)| {
            serve.rules().iter().any(|r| r.source.as_atom() == Some(l))
        };
        if try_patch
            && class.lav
            && class.relational
            && !net_added.iter().any(matches_rule)
            && !net_removed.iter().any(matches_rule)
        {
            for slot in slots.iter_mut() {
                if !matches!(slot.state, SlotState::Empty) {
                    slot.generation = generation;
                }
            }
            drop(slots);
            self.patched_deltas.fetch_add(1, Ordering::Relaxed);
            return Ok(report(true));
        }
        let mut patched = true;
        for (fi, slot) in slots.iter_mut().enumerate() {
            let universal = fi == Flavour::Universal as usize;
            match std::mem::take(&mut slot.state) {
                SlotState::Empty => {}
                // the mapping's class doesn't change with data
                SlotState::Failed(SolutionError::NotRelational) => {
                    slot.state = SlotState::Failed(SolutionError::NotRelational);
                    slot.generation = generation;
                }
                // additions can't un-conflict an ε-rule; a removal might,
                // so it falls through to invalidation below
                SlotState::Failed(e @ SolutionError::NoSolution { .. })
                    if try_patch && net_removed.is_empty() =>
                {
                    slot.state = SlotState::Failed(e);
                    slot.generation = generation;
                }
                SlotState::Failed(_) => {
                    self.release(slot);
                    patched = false;
                }
                state @ (SlotState::Patched { .. } | SlotState::Ready(_)) if try_patch => {
                    let (mut sol, mut carry) = match state {
                        SlotState::Patched { sol, carry } => (*sol, carry),
                        SlotState::Ready(prep) => {
                            let carry = Some(RefreezeCarry::from_prepared(&prep));
                            let sol = match Arc::try_unwrap(prep) {
                                Ok(prep) => prep.into_solution(),
                                Err(shared) => shared.solution().clone(),
                            };
                            (sol, carry)
                        }
                        _ => unreachable!(),
                    };
                    let outcome = sol
                        .patch_lav_edges(&serve, &source, &net_added, universal)
                        .map(|add| {
                            add.and_then(|mut summary| {
                                if net_removed.is_empty() {
                                    return Some(summary);
                                }
                                sol.unpatch_lav_edges(&serve, &source, &net_removed)
                                    .map(|rem| {
                                        summary.merge(rem);
                                        summary
                                    })
                            })
                        });
                    match outcome {
                        Ok(Some(summary)) => {
                            if let Some(c) = carry.as_mut() {
                                c.absorb(&summary);
                            }
                            self.sub_bytes(slot.bytes);
                            // the carry's retained snapshot/slices stay
                            // resident until the refreeze: charge them too
                            slot.bytes =
                                sol.approx_bytes() + carry.as_ref().map_or(0, |c| c.approx_bytes());
                            self.add_bytes(slot.bytes);
                            slot.state = SlotState::Patched {
                                sol: Box::new(sol),
                                carry,
                            };
                            slot.generation = generation;
                        }
                        Ok(None) => {
                            self.release(slot);
                            patched = false;
                        }
                        Err(e) => {
                            // the delta made the mapping unsatisfiable:
                            // answers are vacuous from here on
                            self.release(slot);
                            slot.state = SlotState::Failed(e);
                            slot.generation = generation;
                        }
                    }
                }
                SlotState::Patched { .. } | SlotState::Ready(_) => {
                    self.release(slot);
                    patched = false;
                }
            }
        }
        drop(slots);
        if patched {
            self.patched_deltas.fetch_add(1, Ordering::Relaxed);
        } else {
            self.invalidating_deltas.fetch_add(1, Ordering::Relaxed);
        }
        self.enforce_budget(None);
        self.release_if_unregistered(&entry);
        Ok(report(patched))
    }

    // ----- internals -----

    fn entry(&self, id: MappingId) -> Result<Arc<MappingEntry>, ServeError> {
        read(&self.registry)
            .get(&id)
            .cloned()
            .ok_or(ServeError::UnknownMapping(id))
    }

    fn tick(&self) -> u64 {
        self.clock.fetch_add(1, Ordering::Relaxed) + 1
    }

    fn add_bytes(&self, n: usize) {
        self.cached.fetch_add(n, Ordering::Relaxed);
    }

    fn sub_bytes(&self, n: usize) {
        self.cached.fetch_sub(n, Ordering::Relaxed);
    }

    /// Clear a slot and give its bytes back to the budget.
    fn release(&self, slot: &mut Slot) {
        self.sub_bytes(slot.bytes);
        *slot = Slot::default();
    }

    /// Record into a mapping's serving-stats accumulator.
    fn note(entry: &MappingEntry, f: impl FnOnce(&mut ServingStats)) {
        f(&mut lock(&entry.serving));
    }

    /// Count a stop-error outcome against the mapping's serving stats.
    fn note_stop(entry: &MappingEntry, e: &ServeError) {
        match e {
            ServeError::DeadlineExceeded { .. } => {
                Self::note(entry, |s| s.deadline_exceeded += 1);
            }
            ServeError::Cancelled { .. } => Self::note(entry, |s| s.cancelled += 1),
            _ => {}
        }
    }

    /// Quarantine one flavour after a contained worker panic: the panic
    /// may have left the prepared solution's shared artifacts (sub-
    /// relation cache, half-built memo state) in an arbitrary state, so
    /// the slot is dropped and the mapping generation is bumped — every
    /// cache key the poisoned solution could still write (from a
    /// concurrent serve holding the old `Arc`) becomes unreachable, and
    /// the next serve rebuilds from the source at the new generation.
    fn quarantine(&self, entry: &MappingEntry, flavour: Flavour) {
        let mut slots = lock(&entry.cache);
        self.release(&mut slots[flavour as usize]);
        entry.generation.fetch_add(1, Ordering::AcqRel);
    }

    /// Admission control for one serve: would letting this serve fill
    /// the sub-relation cache blow the service budget? Returns `true`
    /// when the serve may use the cache (evicting colder solutions first
    /// if needed — evict-then-admit) and `false` when the estimated
    /// footprint cannot fit even then, in which case the serve runs
    /// degraded (uncached) instead of failing or thrashing the cache.
    fn admit_serve(&self, entry: &MappingEntry, prep: &PreparedSolution, flavour: Flavour) -> bool {
        let budget = self.budget.load(Ordering::Relaxed);
        // only sharded serves fill the sub-relation cache; unsharded and
        // exact serves charge nothing beyond the already-admitted
        // solution, so there is nothing to gate
        if budget == 0 || prep.sharded.is_none() {
            return true;
        }
        let est = prep.estimated_serve_bytes();
        // already-charged bytes for this solution count toward its own
        // footprint, not against headroom
        if prep.approx_bytes() + est > budget {
            return false;
        }
        if self.cached.load(Ordering::Relaxed) + est > budget {
            // evict-then-admit: free colder solutions until the estimate
            // fits (the serving slot is protected)
            self.enforce_budget_reserve(est, Some((entry.id, flavour)));
        }
        true
    }

    fn answer_entry(
        &self,
        entry: &MappingEntry,
        q: &CompiledQuery,
        sem: Semantics,
        ctrl: &Arc<EvalControl>,
    ) -> Result<Answer, ServeError> {
        check_fragment(q, sem)?;
        // admission: a serve whose deadline already expired (or that was
        // cancelled before it started) is rejected at the door
        if ctrl.should_stop() {
            let cause = ctrl
                .fired()
                .expect("invariant: should_stop latched a cause");
            Self::note(entry, |s| s.rejected += 1);
            return Err(stop_error(cause, 0, 0));
        }
        // the analyzer's statically-empty verdict: the query's labels are
        // disjoint from everything the mapping can produce and it cannot
        // match an isolated node — its certain answer is empty on every
        // source graph, under every semantics. O(1), no solution, no
        // stripes, no cache. (Such a query also never constrains pruning,
        // so it is deliberately not folded into the workload.)
        if analyze::statically_empty(q.shape(), &entry.facts) {
            Self::note(entry, |s| s.static_empty += 1);
            return Ok(empty_answer(sem.mode()));
        }
        self.ensure_covered(entry, std::iter::once(q));
        for attempt in 0..2 {
            // contain every panic on the serve path — stripe workers are
            // caught by the try_ fan-outs; phase-1 builds, merges and
            // (re)freezes run on this thread and are caught here
            let outcome = catch_unwind(AssertUnwindSafe(|| -> Result<Answer, ServeError> {
                let prep = match self.prepared(entry, sem.flavour()) {
                    Ok(p) => p,
                    Err(SolutionError::NotRelational) => return Err(ServeError::NotRelational),
                    Err(SolutionError::NoSolution { .. }) => return Ok(vacuous_answer(sem.mode())),
                };
                let use_cache = self.admit_serve(entry, &prep, sem.flavour());
                if !use_cache {
                    Self::note(entry, |s| s.degraded += 1);
                }
                eval_semantics(&prep, q, sem, ctrl, use_cache)
            }));
            let err = match outcome {
                Ok(Err(e @ ServeError::StripePanicked { .. })) => e,
                Ok(Err(
                    e @ (ServeError::DeadlineExceeded { .. } | ServeError::Cancelled { .. }),
                )) => {
                    // a stop is not a fault: nothing is quarantined, no
                    // retry — the caches are consistent as-is
                    Self::note_stop(entry, &e);
                    return Err(e);
                }
                Ok(done) => return done,
                Err(payload) => ServeError::StripePanicked {
                    message: par::panic_message(&*payload),
                    stripes: Vec::new(),
                },
            };
            let panics = match &err {
                ServeError::StripePanicked { stripes, .. } => stripes.len().max(1) as u64,
                _ => 1,
            };
            Self::note(entry, |s| s.worker_panics += panics);
            self.quarantine(entry, sem.flavour());
            if attempt == 0 {
                Self::note(entry, |s| s.retries += 1);
            } else {
                return Err(err);
            }
        }
        unreachable!("the retry loop always returns")
    }

    /// Get (building or re-freezing if necessary) the cached prepared
    /// solution for a flavour. Builds happen under the entry's cache lock —
    /// concurrent first answers to one mapping serialize, different
    /// mappings don't.
    fn prepared(
        &self,
        entry: &MappingEntry,
        flavour: Flavour,
    ) -> Result<Arc<PreparedSolution>, SolutionError> {
        // the workload profile seeds cold-start cost estimates; taken
        // before the cache lock (lock order: workload before cache)
        let prior = {
            let w = lock(&entry.workload);
            if w.is_empty() {
                None
            } else {
                Some(w.clone())
            }
        };
        let out;
        {
            let mut slots = lock(&entry.cache);
            let generation = entry.generation.load(Ordering::Acquire);
            let slot = &mut slots[flavour as usize];
            if slot.generation != generation && !matches!(slot.state, SlotState::Empty) {
                // apply_delta reconciles eagerly; this is belt and braces
                self.release(slot);
            }
            match &slot.state {
                SlotState::Ready(p) => {
                    // the sub-relation cache filled (or got evicted)
                    // while serving: settle the delta against the
                    // service budget so `cached` tracks reality
                    let (new, old) = p.sync_cache_charge();
                    if new >= old {
                        slot.bytes += new - old;
                        self.add_bytes(new - old);
                    } else {
                        slot.bytes -= old - new;
                        self.sub_bytes(old - new);
                    }
                    slot.last_used = self.tick();
                    return Ok(p.clone());
                }
                SlotState::Failed(e) => return Err(e.clone()),
                SlotState::Empty | SlotState::Patched { .. } => {}
            }
            let shards = self.resolve_shards(entry);
            // release the slot's previous charge *before* the build: a
            // contained panic mid-(re)freeze then leaves an Empty slot
            // with zero bytes — consistent, just cold — instead of a
            // phantom charge no eviction could ever reclaim
            let prev = std::mem::take(&mut slot.state);
            self.sub_bytes(slot.bytes);
            slot.bytes = 0;
            slot.generation = generation;
            let built = match prev {
                // a delta-patched solution only needs re-freezing — and the
                // carry keeps untouched labels/stripes from re-freezing too
                SlotState::Patched { sol, carry } => Ok(PreparedSolution::refreeze(
                    *sol,
                    carry,
                    shards,
                    generation,
                    prior.as_ref(),
                )),
                SlotState::Empty => {
                    let source = read(&entry.source).clone();
                    // build from the served (possibly pruned) mapping —
                    // answer-equivalent for every covered query, smaller
                    // when the analyzer dropped dead/subsumed rules
                    let gsm = read(&entry.serve_gsm).clone();
                    match flavour {
                        Flavour::Universal => universal_solution(&gsm, &source),
                        Flavour::LeastInformative => least_informative_solution(&gsm, &source),
                    }
                    .map(|sol| PreparedSolution::new(sol, shards, generation, prior.as_ref()))
                }
                _ => unreachable!("ready/failed handled above"),
            }
            // every solution built for this mapping records into the
            // mapping's own accumulator
            .map(|mut p| {
                p.serving = entry.serving.clone();
                p
            });
            match built {
                Ok(prep) => {
                    let prep = Arc::new(prep);
                    prep.sync_cache_charge();
                    slot.bytes = prep.approx_bytes();
                    self.add_bytes(slot.bytes);
                    slot.last_used = self.tick();
                    slot.state = SlotState::Ready(prep.clone());
                    out = Ok(prep);
                }
                Err(e) => {
                    slot.state = SlotState::Failed(e.clone());
                    out = Err(e);
                }
            }
        }
        if out.is_ok() {
            self.enforce_budget(Some((entry.id, flavour)));
            self.release_if_unregistered(entry);
        }
        out
    }

    /// A racing `unregister` can drop an entry from the registry while a
    /// build still holds its `Arc` and is about to charge bytes for it;
    /// anything charged to such an orphan would be unreachable to both
    /// eviction and `unregister` forever. Called after every charge.
    /// (`release` zeroes `bytes`, so double releases are no-ops.)
    fn release_if_unregistered(&self, entry: &MappingEntry) {
        if !read(&self.registry).contains_key(&entry.id) {
            let mut slots = lock(&entry.cache);
            for slot in slots.iter_mut() {
                self.release(slot);
            }
        }
    }

    /// Evict least-recently-served solutions until the cache fits the
    /// budget. `protect` shields the slot serving the current answer. Locks
    /// at most one entry cache at a time (and is only ever called with no
    /// cache lock held), so builders in different entries cannot deadlock.
    fn enforce_budget(&self, protect: Option<(MappingId, Flavour)>) {
        self.enforce_budget_reserve(0, protect);
    }

    /// [`MappingService::enforce_budget`] with `reserve` extra bytes held
    /// back — the evict-then-admit half of admission control: eviction
    /// continues until `cached + reserve` fits the budget, so an
    /// incoming serve's estimated cache footprint has room before it
    /// starts charging.
    fn enforce_budget_reserve(&self, reserve: usize, protect: Option<(MappingId, Flavour)>) {
        let budget = self.budget.load(Ordering::Relaxed);
        if budget == 0 {
            return;
        }
        // bounded sweeps: a concurrent toucher can invalidate one pick, not
        // starve the loop
        for _ in 0..64 {
            if self.cached.load(Ordering::Relaxed).saturating_add(reserve) <= budget {
                return;
            }
            let entries: Vec<Arc<MappingEntry>> = read(&self.registry).values().cloned().collect();
            let mut victim: Option<(u64, Arc<MappingEntry>, usize)> = None;
            for e in &entries {
                let slots = lock(&e.cache);
                for (fi, slot) in slots.iter().enumerate() {
                    if slot.bytes == 0 {
                        continue;
                    }
                    if protect
                        == Some((
                            e.id,
                            if fi == 0 {
                                Flavour::Universal
                            } else {
                                Flavour::LeastInformative
                            },
                        ))
                    {
                        continue;
                    }
                    if victim
                        .as_ref()
                        .is_none_or(|(lu, _, _)| slot.last_used < *lu)
                    {
                        victim = Some((slot.last_used, e.clone(), fi));
                    }
                }
            }
            let Some((last_used, e, fi)) = victim else {
                return; // nothing evictable (only the protected slot is resident)
            };
            let mut slots = lock(&e.cache);
            let slot = &mut slots[fi];
            if slot.bytes > 0 && slot.last_used == last_used {
                self.release(slot);
                self.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
    }
}

/// The §8 engine only supports the inequality-free fragment.
fn check_fragment(q: &CompiledQuery, sem: Semantics) -> Result<(), ServeError> {
    if matches!(sem, Semantics::LeastInformative(_)) && !q.is_equality_only() {
        return Err(ServeError::UnsupportedQuery(
            "least-informative engine requires an inequality-free query (REM=/REE=)",
        ));
    }
    Ok(())
}

/// When no solution exists, every tuple is vacuously certain.
fn vacuous_answer(mode: Mode) -> Answer {
    match mode {
        Mode::Tuples => Answer::Tuples(CertainAnswers::AllVacuously),
        Mode::Boolean => Answer::Boolean(true),
    }
}

/// The statically-empty answer: no pair is certain, nothing holds.
fn empty_answer(mode: Mode) -> Answer {
    match mode {
        Mode::Tuples => Answer::Tuples(CertainAnswers::Pairs(Vec::new())),
        Mode::Boolean => Answer::Boolean(false),
    }
}

/// Evaluate a query on a frozen solution under the chosen semantics.
/// The deadline/cancel control is checked between stripes and phase-1
/// units on the canonical engines; the exact enumeration checks only at
/// entry (its search is not decomposed into cooperative units).
fn eval_semantics(
    prep: &PreparedSolution,
    q: &CompiledQuery,
    sem: Semantics,
    ctrl: &Arc<EvalControl>,
    use_cache: bool,
) -> Result<Answer, ServeError> {
    Ok(match sem {
        Semantics::Nulls(Mode::Tuples) | Semantics::LeastInformative(Mode::Tuples) => {
            Answer::Tuples(CertainAnswers::Pairs(
                prep.answers_over_dom(q, ctrl, use_cache)?,
            ))
        }
        Semantics::Nulls(Mode::Boolean) | Semantics::LeastInformative(Mode::Boolean) => {
            Answer::Boolean(prep.holds(q, ctrl, use_cache)?)
        }
        Semantics::Exact(mode, opts) => {
            if ctrl.should_stop() {
                let cause = ctrl
                    .fired()
                    .expect("invariant: should_stop latched a cause");
                return Err(stop_error(cause, 0, 1));
            }
            // the exact enumeration doesn't decompose into stripes, but
            // its serves are recorded all the same (as one stripe-0
            // evaluation) so hit-rate and template numbers cover every
            // semantics
            let started = Instant::now();
            match mode {
                Mode::Tuples => {
                    let answers = exact_answers_from(prep.solution(), q.source(), opts)?;
                    let tuples = match &answers {
                        CertainAnswers::Pairs(pairs) => pairs.len(),
                        CertainAnswers::AllVacuously => 0,
                    };
                    prep.record(0, started.elapsed(), tuples, false);
                    Answer::Tuples(answers)
                }
                Mode::Boolean => {
                    let holds = exact_boolean_from(prep.solution(), q.source(), opts)?;
                    prep.record(0, started.elapsed(), 0, true);
                    Answer::Boolean(holds)
                }
            }
        }
    })
}

/// One-shot serving without a service: build the needed canonical solution
/// for `(gsm, source)`, answer `q` under `sem`, throw the artifacts away.
/// This is what the deprecated free functions in [`crate::certain`] now
/// wrap; hold a [`MappingService`] instead when answering more than once.
pub fn answer_once(
    gsm: &Gsm,
    source: &DataGraph,
    q: &CompiledQuery,
    sem: Semantics,
) -> Result<Answer, ServeError> {
    check_fragment(q, sem)?;
    let sol = match sem.flavour() {
        Flavour::Universal => universal_solution(gsm, source),
        Flavour::LeastInformative => least_informative_solution(gsm, source),
    };
    let sol = match sol {
        Ok(sol) => sol,
        Err(SolutionError::NotRelational) => return Err(ServeError::NotRelational),
        Err(SolutionError::NoSolution { .. }) => return Ok(vacuous_answer(sem.mode())),
    };
    if let Semantics::Exact(mode, opts) = sem {
        // the exact enumeration consumes the solution directly — skip the
        // snapshot freeze
        return Ok(match mode {
            Mode::Tuples => Answer::Tuples(exact_answers_from(&sol, q.source(), opts)?),
            Mode::Boolean => Answer::Boolean(exact_boolean_from(&sol, q.source(), opts)?),
        });
    }
    eval_semantics(
        &PreparedSolution::new(sol, 1, 0, None),
        q,
        sem,
        &Arc::new(EvalControl::unbounded()),
        true,
    )
}

/// A schema mapping prepared against one source graph, serving certain
/// answers for many queries.
///
/// This is the pre-[`MappingService`] engine, kept as a thin borrowing
/// wrapper over a single-mapping service: construction clones the mapping
/// and source into a private service; every `certain_*` method forwards to
/// [`MappingService::answer`] with the corresponding [`Semantics`].
///
/// Migration: replace
/// `PreparedMapping::new(&gsm, &source).certain_answers_nulls(&q)` with
/// a service you keep around —
/// `let id = svc.register(gsm, source); svc.answer(id, &q, Semantics::nulls())`.
#[deprecated(
    since = "0.1.0",
    note = "use MappingService: register(gsm, source) once, then answer(id, &query, Semantics); \
            the service owns Arc-shared graphs, caches under a byte budget and absorbs deltas"
)]
pub struct PreparedMapping<'a> {
    gsm: &'a Gsm,
    source: &'a DataGraph,
    service: MappingService,
    id: MappingId,
    universal: OnceLock<Result<Arc<PreparedSolution>, SolutionError>>,
    least_informative: OnceLock<Result<Arc<PreparedSolution>, SolutionError>>,
}

#[allow(deprecated)]
impl<'a> PreparedMapping<'a> {
    /// Prepare a mapping against a source graph. The pair is cloned into a
    /// private single-mapping [`MappingService`]; solutions are still built
    /// lazily, at most once per flavour, on first use.
    pub fn new(gsm: &'a Gsm, source: &'a DataGraph) -> PreparedMapping<'a> {
        let service = MappingService::new();
        let id = service.register(gsm.clone(), source.clone());
        PreparedMapping {
            gsm,
            source,
            service,
            id,
            universal: OnceLock::new(),
            least_informative: OnceLock::new(),
        }
    }

    /// The mapping being served.
    pub fn gsm(&self) -> &Gsm {
        self.gsm
    }

    /// The source graph being served.
    pub fn source(&self) -> &DataGraph {
        self.source
    }

    fn cached(&self, sem: Semantics) -> &Result<Arc<PreparedSolution>, SolutionError> {
        let cell = match sem.flavour() {
            Flavour::Universal => &self.universal,
            Flavour::LeastInformative => &self.least_informative,
        };
        cell.get_or_init(|| {
            self.service.solution(self.id, sem).map_err(|e| match e {
                ServeError::NotRelational => SolutionError::NotRelational,
                ServeError::NoSolution { pair } => SolutionError::NoSolution { pair },
                other => unreachable!("solution access cannot fail with {other:?}"),
            })
        })
    }

    /// The cached universal solution (§7), building it on first call.
    pub fn universal(&self) -> Result<&PreparedSolution, SolutionError> {
        match self.cached(Semantics::nulls()) {
            Ok(p) => Ok(p),
            Err(e) => Err(e.clone()),
        }
    }

    /// The cached least-informative solution (§8), building it on first
    /// call.
    pub fn least_informative(&self) -> Result<&PreparedSolution, SolutionError> {
        match self.cached(Semantics::least_informative()) {
            Ok(p) => Ok(p),
            Err(e) => Err(e.clone()),
        }
    }

    fn forward_tuples(
        &self,
        q: &CompiledQuery,
        sem: Semantics,
    ) -> Result<CertainAnswers, SolveError> {
        // reject out-of-fragment queries before building anything (the
        // pre-redesign behaviour), then pin the solution so the wrapper
        // keeps its historical "built at most once" pointer stability
        check_fragment(q, sem).map_err(solve_error)?;
        let _ = self.cached(sem);
        self.service
            .answer(self.id, q, sem)
            .map(Answer::into_tuples)
            .map_err(solve_error)
    }

    fn forward_boolean(&self, q: &CompiledQuery, sem: Semantics) -> Result<bool, SolveError> {
        check_fragment(q, sem).map_err(solve_error)?;
        let _ = self.cached(sem);
        self.service
            .answer(self.id, q, sem)
            .map(|a| a.boolean())
            .map_err(solve_error)
    }

    /// `2ⁿ_M(Q, G_s)` (Theorems 3/4): certain answers over targets with SQL
    /// nulls, served from the cached universal solution.
    pub fn certain_answers_nulls(&self, q: &CompiledQuery) -> Result<CertainAnswers, SolveError> {
        self.forward_tuples(q, Semantics::nulls())
    }

    /// Boolean `2ⁿ`: does `Q` match somewhere in every solution over
    /// `D ∪ {n}`?
    pub fn certain_boolean_nulls(&self, q: &CompiledQuery) -> Result<bool, SolveError> {
        self.forward_boolean(q, Semantics::nulls_boolean())
    }

    /// `2_M(Q, G_s)` for equality-only queries (Theorem 5): **exact** plain
    /// certain answers for REM=/REE=/RPQs, served from the cached
    /// least-informative solution.
    pub fn certain_answers_least_informative(
        &self,
        q: &CompiledQuery,
    ) -> Result<CertainAnswers, SolveError> {
        self.forward_tuples(q, Semantics::least_informative())
    }

    /// Boolean variant of
    /// [`PreparedMapping::certain_answers_least_informative`].
    pub fn certain_boolean_least_informative(&self, q: &CompiledQuery) -> Result<bool, SolveError> {
        self.forward_boolean(q, Semantics::least_informative_boolean())
    }

    /// The serving default: exact `2` answers when the query allows it
    /// (equality-only, Theorem 5), the `2ⁿ` under-approximation otherwise
    /// (Theorem 4).
    pub fn certain_answers(&self, q: &CompiledQuery) -> Result<CertainAnswers, SolveError> {
        self.forward_tuples(q, Semantics::preferred_for(q))
    }

    /// Exact plain certain answers `2_M(Q, G_s)` (Theorem 2's coNP
    /// procedure), reusing the cached universal solution as the enumeration
    /// skeleton. Exponential in the number of invented nodes; bounded by
    /// `opts`.
    pub fn certain_answers_exact(
        &self,
        q: &DataQuery,
        opts: ExactOptions,
    ) -> Result<CertainAnswers, ExactError> {
        // consume the cached skeleton directly — the enumeration needs the
        // DataQuery itself, so there is nothing to gain from compiling
        match self.cached(Semantics::nulls()) {
            Ok(prep) => exact_answers_from(prep.solution(), q, opts),
            Err(SolutionError::NotRelational) => Err(ExactError::NotRelational),
            Err(SolutionError::NoSolution { .. }) => Ok(CertainAnswers::AllVacuously),
        }
    }

    /// Boolean variant of [`PreparedMapping::certain_answers_exact`].
    pub fn certain_boolean_exact(
        &self,
        q: &DataQuery,
        opts: ExactOptions,
    ) -> Result<bool, ExactError> {
        match self.cached(Semantics::nulls()) {
            Ok(prep) => exact_boolean_from(prep.solution(), q, opts),
            Err(SolutionError::NotRelational) => Err(ExactError::NotRelational),
            Err(SolutionError::NoSolution { .. }) => Ok(true),
        }
    }
}

#[cfg(test)]
#[allow(deprecated)]
mod tests {
    use super::*;
    use gde_automata::parse_regex;
    use gde_datagraph::{Alphabet, Value};
    use gde_dataquery::parse_ree;

    /// The same scenario as `certain.rs`: 0(v5) -a-> 1(v5) -a-> 2(v7),
    /// mapping (a, x y).
    fn scenario() -> (Gsm, DataGraph) {
        let mut sa = Alphabet::from_labels(["a"]);
        let mut ta = Alphabet::from_labels(["x", "y"]);
        let mut m = Gsm::new(sa.clone(), ta.clone());
        m.add_rule(
            parse_regex("a", &mut sa).unwrap(),
            parse_regex("x y", &mut ta).unwrap(),
        );
        let mut gs = DataGraph::new();
        gs.add_node(NodeId(0), Value::int(5)).unwrap();
        gs.add_node(NodeId(1), Value::int(5)).unwrap();
        gs.add_node(NodeId(2), Value::int(7)).unwrap();
        gs.add_edge_str(NodeId(0), "a", NodeId(1)).unwrap();
        gs.add_edge_str(NodeId(1), "a", NodeId(2)).unwrap();
        (m, gs)
    }

    #[test]
    fn service_serves_all_semantics() {
        let (m, gs) = scenario();
        let svc = MappingService::new();
        let id = svc.register(m.clone(), gs);
        let mut ta = m.target_alphabet().clone();
        let q = gde_dataquery::DataQuery::from(parse_ree("(x y)=", &mut ta).unwrap()).compile();
        let nulls = svc.answer(id, &q, Semantics::nulls()).unwrap().into_pairs();
        assert_eq!(nulls, vec![(NodeId(0), NodeId(1))]);
        let li = svc
            .answer(id, &q, Semantics::least_informative())
            .unwrap()
            .into_pairs();
        assert_eq!(li, nulls);
        let exact = svc.answer(id, &q, Semantics::exact()).unwrap().into_pairs();
        assert_eq!(exact, nulls);
        assert!(svc
            .answer(id, &q, Semantics::nulls_boolean())
            .unwrap()
            .boolean());
        assert!(svc
            .answer(id, &q, Semantics::least_informative_boolean())
            .unwrap()
            .boolean());
        assert!(svc
            .answer(id, &q, Semantics::exact_boolean())
            .unwrap()
            .boolean());
        // dispatch helper routes by fragment
        let neq = gde_dataquery::DataQuery::from(parse_ree("(x y)!=", &mut ta).unwrap()).compile();
        assert_eq!(Semantics::preferred_for(&q), Semantics::least_informative());
        assert_eq!(Semantics::preferred_for(&neq), Semantics::nulls());
        assert!(matches!(
            svc.answer(id, &neq, Semantics::least_informative()),
            Err(ServeError::UnsupportedQuery(_))
        ));
        // caches are resident and accounted
        assert!(svc.is_cached(id, Semantics::nulls()));
        assert!(svc.is_cached(id, Semantics::least_informative()));
        assert!(svc.cached_bytes() > 0);
        assert_eq!(svc.stats().cached_solutions, 2);
    }

    #[test]
    fn sharded_serving_matches_unsharded() {
        let (m, gs) = scenario();
        let reference = MappingService::new();
        let rid = reference.register(m.clone(), gs.clone());
        let mut ta = m.target_alphabet().clone();
        let queries: Vec<CompiledQuery> = ["x y", "(x y)=", "x+", "y x"]
            .iter()
            .map(|s| gde_dataquery::DataQuery::from(parse_ree(s, &mut ta).unwrap()).compile())
            .collect();
        for k in [2, 3, 8] {
            let svc = MappingService::new();
            let id = svc.register(m.clone(), gs.clone());
            svc.set_shard_count(id, k).unwrap();
            assert_eq!(svc.shard_count(id), Some(k));
            for sem in [
                Semantics::nulls(),
                Semantics::nulls_boolean(),
                Semantics::least_informative(),
                Semantics::least_informative_boolean(),
                Semantics::exact(),
                Semantics::exact_boolean(),
            ] {
                for q in &queries {
                    assert_eq!(
                        svc.answer(id, q, sem),
                        reference.answer(rid, q, sem),
                        "k={k} {sem:?}"
                    );
                }
                let batch = svc.answer_batch(id, &queries, sem);
                for (q, got) in queries.iter().zip(batch) {
                    assert_eq!(got, reference.answer(rid, q, sem), "batch k={k} {sem:?}");
                }
            }
            let prep = svc.solution(id, Semantics::nulls()).unwrap();
            assert_eq!(prep.shard_count(), k);
            assert_eq!(prep.shard_stamps().len(), k);
            assert!(prep.sharded().is_some());
        }
        // resizing (including back to 1) re-prepares and keeps answers
        let svc = MappingService::new();
        let id = svc.register(m.clone(), gs.clone());
        svc.set_shard_count(id, 4).unwrap();
        let a4 = svc.answer(id, &queries[0], Semantics::nulls());
        svc.set_shard_count(id, 1).unwrap();
        assert_eq!(svc.answer(id, &queries[0], Semantics::nulls()), a4);
        assert!(svc
            .solution(id, Semantics::nulls())
            .unwrap()
            .sharded()
            .is_none());
    }

    #[test]
    fn auto_shard_spec_resolves_and_serves_identically() {
        let (m, gs) = scenario();
        let reference = MappingService::new();
        let rid = reference.register(m.clone(), gs.clone());
        let svc = MappingService::new();
        let id = svc.register(m.clone(), gs.clone());
        svc.set_shard_count(id, ShardSpec::Auto).unwrap();
        assert_eq!(svc.shard_spec(id), Some(ShardSpec::Auto));
        // tiny graph: the policy keeps it unsharded, and the resolved
        // count is what shard_count reports
        let k = svc.shard_count(id).unwrap();
        assert_eq!(k, 1, "3-node graphs must not shard");
        let mut ta = m.target_alphabet().clone();
        let q = gde_dataquery::DataQuery::from(parse_ree("x y", &mut ta).unwrap()).compile();
        assert_eq!(
            svc.answer(id, &q, Semantics::nulls()),
            reference.answer(rid, &q, Semantics::nulls())
        );
        assert_eq!(
            svc.solution(id, Semantics::nulls()).unwrap().shard_count(),
            k
        );
        // switching back to a fixed spec round-trips
        svc.set_shard_count(id, 3).unwrap();
        assert_eq!(svc.shard_spec(id), Some(ShardSpec::Fixed(3)));
        assert_eq!(svc.shard_count(id), Some(3));
    }

    #[test]
    fn auto_policy_scales_with_size_threads_and_stats() {
        let idle = ServingStats::default();
        // tiny graphs never shard, whatever the thread budget
        assert_eq!(auto_shard_count(100, 8, &idle), 1);
        // big graph: one stripe per worker thread
        assert_eq!(auto_shard_count(100_000, 4, &idle), 4);
        // ... but never stripes below ~1k rows
        assert_eq!(auto_shard_count(3000, 8, &idle), 2);
        // Boolean-leaning workloads get stripes for the OR-short-circuit
        // even on one thread
        let boolish = ServingStats {
            boolean_evals: 10,
            tuple_evals: 2,
            ..Default::default()
        };
        assert_eq!(auto_shard_count(100_000, 1, &boolish), 4);
        // heavy evaluations oversubscribe the thread budget 2x
        let heavy = ServingStats {
            tuple_evals: 4,
            eval_ns: 4 * 50_000_000,
            ..Default::default()
        };
        assert_eq!(auto_shard_count(100_000, 4, &heavy), 8);
        assert_eq!(heavy.mean_eval_ns(), 50_000_000);
        // ... unless phase-1 memo construction dominates: the serial
        // prefix caps the useful stripe count at the thread budget
        let memo_bound = ServingStats {
            tuple_evals: 4,
            eval_ns: 4 * 50_000_000,
            memo_build_ns: 5 * 4 * 50_000_000,
            ..Default::default()
        };
        assert!(memo_bound.memo_share() > 0.5);
        assert_eq!(auto_shard_count(100_000, 4, &memo_bound), 4);
    }

    #[test]
    fn serving_stats_accumulate_per_stripe() {
        let (m, gs) = scenario();
        let svc = MappingService::new();
        let id = svc.register(m.clone(), gs);
        assert_eq!(svc.serving_stats(id), Some(ServingStats::default()));
        let mut ta = m.target_alphabet().clone();
        let q = gde_dataquery::DataQuery::from(parse_ree("x y", &mut ta).unwrap()).compile();
        svc.answer(id, &q, Semantics::nulls()).unwrap();
        svc.answer(id, &q, Semantics::nulls_boolean()).unwrap();
        let stats = svc.serving_stats(id).unwrap();
        assert_eq!(stats.tuple_evals, 1);
        assert_eq!(stats.boolean_evals, 1);
        assert_eq!(stats.tuples, 2, "x y has two dom answers");
        assert_eq!(stats.mean_tuples(), 2);
        assert_eq!(stats.per_stripe.len(), 1, "unsharded records stripe 0");
        assert_eq!(stats.per_stripe[0].evals, 2);
        // sharded serving records one eval per (query, stripe)
        svc.set_shard_count(id, 2).unwrap();
        svc.answer(id, &q, Semantics::nulls()).unwrap();
        let stats = svc.serving_stats(id).unwrap();
        assert_eq!(stats.tuple_evals, 3);
        assert_eq!(stats.per_stripe.len(), 2);
        // the accumulator belongs to the mapping: eviction keeps it
        svc.evict_all();
        assert_eq!(svc.serving_stats(id).unwrap().tuple_evals, 3);
    }

    #[test]
    fn sharded_serving_records_memo_and_cache_stats() {
        let (m, gs) = scenario();
        let svc = MappingService::new();
        let id = svc.register(m.clone(), gs);
        svc.set_shard_count(id, 2).unwrap();
        let mut ta = m.target_alphabet().clone();
        let q = gde_dataquery::DataQuery::from(parse_ree("(x y)+", &mut ta).unwrap()).compile();
        // cold call: the closure memo is built once, before the stripe
        // fan-out, and charged to memo_build_ns — not to stripe eval time
        let cold = svc.answer(id, &q, Semantics::nulls()).unwrap();
        let stats = svc.serving_stats(id).unwrap();
        assert!(stats.memo_build_ns > 0, "phase-1 memo build must be timed");
        assert!(stats.cache_misses > 0, "cold run populates the cache");
        assert_eq!(stats.cache_hits, 0, "nothing to hit on a cold cache");
        assert!(stats.cache_bytes > 0, "resident entries are accounted");
        // warm call: stripe results and shared artifacts come from the
        // cache, byte-identical to the cold answer
        let warm = svc.answer(id, &q, Semantics::nulls()).unwrap();
        assert_eq!(warm, cold);
        let stats = svc.serving_stats(id).unwrap();
        assert!(stats.cache_hits > 0, "repeat serving must hit");
        assert!(stats.cache_hit_rate() > 0.0);
        // a delta bumps the generation: stale entries never serve, the
        // next call misses again and still matches an unsharded reference
        let misses_before = stats.cache_misses;
        let delta = GraphDelta::new().with_edge(NodeId(2), "a", NodeId(0));
        svc.apply_delta(id, &delta).unwrap();
        let (m2, gs2) = scenario();
        let reference = MappingService::new();
        let rid = reference.register(m2, gs2);
        reference.apply_delta(rid, &delta).unwrap();
        let fresh = svc.answer(id, &q, Semantics::nulls()).unwrap();
        assert_eq!(
            fresh,
            reference.answer(rid, &q, Semantics::nulls()).unwrap()
        );
        let stats = svc.serving_stats(id).unwrap();
        assert!(
            stats.cache_misses > misses_before,
            "post-delta serving must rebuild, not reuse stale generations"
        );
    }

    #[test]
    fn deltas_bump_only_touched_shard_stamps() {
        // a LAV mapping with two labels: a => x (no invented nodes, so the
        // dense domain never grows and refreezes stay incremental)
        let mut sa = Alphabet::from_labels(["a", "b"]);
        let mut ta = Alphabet::from_labels(["x", "y"]);
        let mut m = Gsm::new(sa.clone(), ta.clone());
        m.add_rule(
            parse_regex("a", &mut sa).unwrap(),
            parse_regex("x", &mut ta).unwrap(),
        );
        m.add_rule(
            parse_regex("b", &mut sa).unwrap(),
            parse_regex("y", &mut ta).unwrap(),
        );
        let mut gs = DataGraph::new();
        for i in 0..16u32 {
            gs.add_node(NodeId(i), Value::int(i as i64)).unwrap();
        }
        for i in 0..15u32 {
            gs.add_edge_str(NodeId(i), "a", NodeId(i + 1)).unwrap();
        }
        gs.add_edge_str(NodeId(0), "b", NodeId(15)).unwrap();
        let svc = MappingService::new();
        let id = svc.register(m, gs);
        svc.set_shard_count(id, 4).unwrap();
        let mut ta2 = ta.clone();
        let q = gde_dataquery::DataQuery::from(parse_ree("x", &mut ta2).unwrap()).compile();
        svc.answer(id, &q, Semantics::nulls()).unwrap();
        let prep0 = svc.solution(id, Semantics::nulls()).unwrap();
        assert_eq!(prep0.shard_stamps(), &[0, 0, 0, 0]);

        // an a-edge between two low-row nodes touches exactly their stripe
        let delta = GraphDelta::new().with_edge(NodeId(0), "a", NodeId(2));
        let report = svc.apply_delta(id, &delta).unwrap();
        assert!(report.patched);
        let answer = svc.answer(id, &q, Semantics::nulls()).unwrap();
        let prep1 = svc.solution(id, Semantics::nulls()).unwrap();
        let bumped: Vec<usize> = prep1
            .shard_stamps()
            .iter()
            .enumerate()
            .filter(|&(_, &s)| s == 1)
            .map(|(i, _)| i)
            .collect();
        assert!(
            !bumped.is_empty() && bumped.len() < 4,
            "only the touched stripes refreeze, got stamps {:?}",
            prep1.shard_stamps()
        );
        // and the answers still match a cold rebuild
        let fresh = MappingService::new();
        let fid = fresh.register(svc.gsm(id).unwrap(), svc.source(id).unwrap());
        assert_eq!(answer, fresh.answer(fid, &q, Semantics::nulls()).unwrap());
    }

    #[test]
    fn unknown_and_unregistered_mappings_error() {
        let (m, gs) = scenario();
        let svc = MappingService::new();
        let id = svc.register(m.clone(), gs);
        let bogus = MappingId(999);
        let mut ta = m.target_alphabet().clone();
        let q = gde_dataquery::DataQuery::from(parse_ree("x", &mut ta).unwrap()).compile();
        assert_eq!(
            svc.answer(bogus, &q, Semantics::nulls()).err(),
            Some(ServeError::UnknownMapping(bogus))
        );
        assert!(svc.answer(id, &q, Semantics::nulls()).is_ok());
        assert!(svc.unregister(id));
        assert!(!svc.unregister(id));
        assert_eq!(svc.mapping_count(), 0);
        assert_eq!(svc.cached_bytes(), 0, "unregister releases cache bytes");
        assert_eq!(
            svc.answer(id, &q, Semantics::nulls()).err(),
            Some(ServeError::UnknownMapping(id))
        );
    }

    #[test]
    fn answer_once_and_batch_agree_with_service() {
        let (m, gs) = scenario();
        let svc = MappingService::new();
        let id = svc.register(m.clone(), gs.clone());
        let mut ta = m.target_alphabet().clone();
        let queries: Vec<CompiledQuery> = ["x y", "(x y)=", "y x"]
            .iter()
            .map(|s| gde_dataquery::DataQuery::from(parse_ree(s, &mut ta).unwrap()).compile())
            .collect();
        for sem in [
            Semantics::nulls(),
            Semantics::nulls_boolean(),
            Semantics::exact(),
        ] {
            let batch = svc.answer_batch(id, &queries, sem);
            for (q, got) in queries.iter().zip(batch) {
                assert_eq!(got, svc.answer(id, q, sem));
                assert_eq!(got, answer_once(&m, &gs, q, sem));
            }
        }
    }

    #[test]
    fn serves_repeated_queries_from_one_solution() {
        let (m, gs) = scenario();
        let prepared = PreparedMapping::new(&m, &gs);
        let mut ta = m.target_alphabet().clone();
        let q1 = DataQuery::from(parse_regex("x y", &mut ta).unwrap()).compile();
        let q2 = DataQuery::from(parse_ree("(x y)=", &mut ta).unwrap()).compile();
        let a1 = prepared.certain_answers_nulls(&q1).unwrap().into_pairs();
        assert_eq!(a1, vec![(NodeId(0), NodeId(1)), (NodeId(1), NodeId(2))]);
        let a2 = prepared.certain_answers_nulls(&q2).unwrap().into_pairs();
        assert_eq!(a2, vec![(NodeId(0), NodeId(1))]);
        // the universal solution was built exactly once
        let p1 = prepared.universal().unwrap() as *const PreparedSolution;
        let _ = prepared.certain_answers_nulls(&q1).unwrap();
        let p2 = prepared.universal().unwrap() as *const PreparedSolution;
        assert_eq!(p1, p2);
    }

    #[test]
    fn least_informative_engine_and_dispatch() {
        let (m, gs) = scenario();
        let prepared = PreparedMapping::new(&m, &gs);
        let mut ta = m.target_alphabet().clone();
        let eq = DataQuery::from(parse_ree("(x y)=", &mut ta).unwrap()).compile();
        let neq = DataQuery::from(parse_ree("(x y)!=", &mut ta).unwrap()).compile();
        assert_eq!(
            prepared
                .certain_answers_least_informative(&eq)
                .unwrap()
                .into_pairs(),
            vec![(NodeId(0), NodeId(1))]
        );
        assert!(matches!(
            prepared.certain_answers_least_informative(&neq),
            Err(SolveError::UnsupportedQuery(_))
        ));
        // serving default: = dispatches to 2, ≠ to 2ⁿ
        assert_eq!(
            prepared.certain_answers(&eq).unwrap().into_pairs(),
            vec![(NodeId(0), NodeId(1))]
        );
        assert_eq!(
            prepared.certain_answers(&neq).unwrap().into_pairs(),
            vec![(NodeId(1), NodeId(2))]
        );
    }

    #[test]
    fn boolean_engines() {
        let (m, gs) = scenario();
        let prepared = PreparedMapping::new(&m, &gs);
        let mut ta = m.target_alphabet().clone();
        let q = DataQuery::from(parse_ree("x y", &mut ta).unwrap()).compile();
        assert!(prepared.certain_boolean_nulls(&q).unwrap());
        assert!(prepared.certain_boolean_least_informative(&q).unwrap());
        let q3 = DataQuery::from(parse_ree("y y", &mut ta).unwrap()).compile();
        assert!(!prepared.certain_boolean_nulls(&q3).unwrap());
    }

    #[test]
    fn exact_engine_reuses_skeleton() {
        let (m, gs) = scenario();
        let prepared = PreparedMapping::new(&m, &gs);
        let mut ta = m.target_alphabet().clone();
        let q = DataQuery::from(parse_ree("(x y)=", &mut ta).unwrap());
        let exact = prepared
            .certain_answers_exact(&q, ExactOptions::default())
            .unwrap()
            .into_pairs();
        // Theorem 5: for equality-only queries the exact and
        // least-informative engines agree
        let li = prepared
            .certain_answers_least_informative(&q.compile())
            .unwrap()
            .into_pairs();
        assert_eq!(exact, li);
        assert!(prepared
            .certain_boolean_exact(&q, ExactOptions::default())
            .unwrap());
    }

    #[test]
    fn vacuous_and_non_relational_cases() {
        // ε-rule conflict: no solution exists
        let mut sa = Alphabet::from_labels(["a"]);
        let ta = Alphabet::from_labels(["x"]);
        let mut m = Gsm::new(sa.clone(), ta.clone());
        m.add_rule(
            parse_regex("a", &mut sa).unwrap(),
            gde_automata::Regex::Epsilon,
        );
        let mut gs = DataGraph::new();
        gs.add_node(NodeId(0), Value::int(1)).unwrap();
        gs.add_node(NodeId(1), Value::int(2)).unwrap();
        gs.add_edge_str(NodeId(0), "a", NodeId(1)).unwrap();
        let prepared = PreparedMapping::new(&m, &gs);
        let mut ta2 = ta.clone();
        let q = DataQuery::from(parse_ree("x", &mut ta2).unwrap()).compile();
        assert_eq!(
            prepared.certain_answers_nulls(&q).unwrap(),
            CertainAnswers::AllVacuously
        );
        assert!(prepared.certain_boolean_nulls(&q).unwrap());
        // ... and through the service accessor it surfaces as an error
        let svc = MappingService::new();
        let id = svc.register(m, gs);
        assert!(matches!(
            svc.solution(id, Semantics::nulls()),
            Err(ServeError::NoSolution { .. })
        ));
        assert_eq!(svc.prepare(id, Semantics::nulls()), Ok(false));

        // non-relational mapping rejected by every engine
        let (m2, gs2) = scenario();
        let mut m3 = m2.clone();
        let reach = gde_automata::Regex::reachability(m3.target_alphabet());
        m3.add_rule(
            gde_automata::Regex::Atom(m3.source_alphabet().label("a").unwrap()),
            reach,
        );
        let prepared = PreparedMapping::new(&m3, &gs2);
        assert_eq!(
            prepared.certain_answers_nulls(&q).err(),
            Some(SolveError::NotRelational)
        );
        let svc = MappingService::new();
        let id = svc.register(m3, gs2);
        assert_eq!(
            svc.answer(id, &q, Semantics::nulls()).err(),
            Some(ServeError::NotRelational)
        );
        assert_eq!(
            svc.answer(id, &q, Semantics::exact()).err(),
            Some(ServeError::NotRelational)
        );
    }
}
