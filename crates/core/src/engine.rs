//! The prepared-mapping serving engine.
//!
//! The paper's tractability results (Theorems 3–5) share one shape: build a
//! canonical solution for `(M, G_s)` **once**, then answer every
//! (hom-closed) query by direct evaluation on it. The free functions in
//! [`crate::certain`] expose that result per call — and therefore rebuild
//! the solution, refreeze the graph and re-lower the query every time.
//! [`PreparedMapping`] is the amortized form:
//!
//! ```text
//! let prepared = PreparedMapping::new(&gsm, &source);
//! let q = query.compile();                   // lower once (gde-dataquery)
//! for _ in serving_loop {
//!     prepared.certain_answers_nulls(&q)?;   // cached solution + snapshot
//! }
//! ```
//!
//! On first use per engine, the mapping's canonical solution
//! ([`universal_solution`] for the `2ⁿ` engine, [`least_informative_solution`]
//! for the `2` REM=/REE= engine) is built and frozen into a
//! [`GraphSnapshot`] (label-partitioned CSR + interned values + cached
//! per-label relations); every subsequent query hits the caches. The free
//! functions in [`crate::certain`] are now thin wrappers over this type, so
//! cold-path callers keep working unchanged.

use crate::certain::{CertainAnswers, SolveError};
use crate::exact::{exact_answers_from, exact_boolean_from, ExactError, ExactOptions};
use crate::gsm::Gsm;
use crate::solution::{
    least_informative_solution, universal_solution, CanonicalSolution, SolutionError,
};
use gde_datagraph::{DataGraph, GraphSnapshot, NodeId};
use gde_dataquery::{CompiledQuery, DataQuery};
use std::sync::OnceLock;

/// A canonical solution frozen for serving: the solution itself, its
/// snapshot, and a dense-index mask of the invented nodes (so dom-filtering
/// is an array lookup per endpoint instead of a hash probe per pair).
#[derive(Debug)]
pub struct PreparedSolution {
    solution: CanonicalSolution,
    snapshot: GraphSnapshot,
    invented_mask: Vec<bool>,
}

impl PreparedSolution {
    fn new(solution: CanonicalSolution) -> PreparedSolution {
        let snapshot = solution.graph.snapshot();
        let invented = solution.invented_set();
        let invented_mask = (0..snapshot.n() as u32)
            .map(|d| invented.contains(&snapshot.id_at(d)))
            .collect();
        PreparedSolution {
            solution,
            snapshot,
            invented_mask,
        }
    }

    /// The canonical solution.
    pub fn solution(&self) -> &CanonicalSolution {
        &self.solution
    }

    /// The frozen snapshot of the solution's target graph.
    pub fn snapshot(&self) -> &GraphSnapshot {
        &self.snapshot
    }

    /// Evaluate a compiled query on the snapshot and keep pairs over
    /// `dom(M, G_s)` (drop tuples touching invented nodes). The query is
    /// consumed in relation form: filtering walks the relation's rows with
    /// the dense invented mask, and only surviving pairs pay the
    /// node-id translation.
    fn answers_over_dom(&self, q: &CompiledQuery) -> Vec<(NodeId, NodeId)> {
        let rel = q.eval_relation(&self.snapshot);
        let mask = &self.invented_mask;
        let mut pairs: Vec<(NodeId, NodeId)> = rel
            .iter_pairs()
            .filter(|&(i, j)| !mask[i] && !mask[j])
            .map(|(i, j)| (self.snapshot.id_at(i as u32), self.snapshot.id_at(j as u32)))
            .collect();
        pairs.sort();
        pairs
    }
}

/// The two canonical-solution flavours an engine can be prepared over.
enum Flavour {
    Universal,
    LeastInformative,
}

/// A schema mapping prepared against one source graph, serving certain
/// answers for many queries.
///
/// Construction is free: solutions and snapshots are built lazily, at most
/// once per flavour, on first use. The borrowed mapping and source must
/// outlive the engine; for an owned variant clone them into an enclosing
/// struct.
pub struct PreparedMapping<'a> {
    gsm: &'a Gsm,
    source: &'a DataGraph,
    universal: OnceLock<Result<PreparedSolution, SolutionError>>,
    least_informative: OnceLock<Result<PreparedSolution, SolutionError>>,
}

impl<'a> PreparedMapping<'a> {
    /// Prepare a mapping against a source graph. No work happens until the
    /// first query.
    pub fn new(gsm: &'a Gsm, source: &'a DataGraph) -> PreparedMapping<'a> {
        PreparedMapping {
            gsm,
            source,
            universal: OnceLock::new(),
            least_informative: OnceLock::new(),
        }
    }

    /// The mapping being served.
    pub fn gsm(&self) -> &Gsm {
        self.gsm
    }

    /// The source graph being served.
    pub fn source(&self) -> &DataGraph {
        self.source
    }

    fn prepared(&self, flavour: Flavour) -> &Result<PreparedSolution, SolutionError> {
        match flavour {
            Flavour::Universal => self.universal.get_or_init(|| {
                universal_solution(self.gsm, self.source).map(PreparedSolution::new)
            }),
            Flavour::LeastInformative => self.least_informative.get_or_init(|| {
                least_informative_solution(self.gsm, self.source).map(PreparedSolution::new)
            }),
        }
    }

    /// The cached universal solution (§7), building it on first call.
    pub fn universal(&self) -> Result<&PreparedSolution, SolutionError> {
        self.prepared(Flavour::Universal)
            .as_ref()
            .map_err(Clone::clone)
    }

    /// The cached least-informative solution (§8), building it on first
    /// call.
    pub fn least_informative(&self) -> Result<&PreparedSolution, SolutionError> {
        self.prepared(Flavour::LeastInformative)
            .as_ref()
            .map_err(Clone::clone)
    }

    /// `2ⁿ_M(Q, G_s)` (Theorems 3/4): certain answers over targets with SQL
    /// nulls, served from the cached universal solution. Sound and complete
    /// for every query closed under null-absorbing homomorphisms — all
    /// [`DataQuery`] classes.
    pub fn certain_answers_nulls(&self, q: &CompiledQuery) -> Result<CertainAnswers, SolveError> {
        serve(
            self.universal(),
            SolveError::NotRelational,
            CertainAnswers::AllVacuously,
            |prep| Ok(CertainAnswers::Pairs(prep.answers_over_dom(q))),
        )
    }

    /// Boolean `2ⁿ`: does `Q` match somewhere in every solution over
    /// `D ∪ {n}`?
    pub fn certain_boolean_nulls(&self, q: &CompiledQuery) -> Result<bool, SolveError> {
        serve(self.universal(), SolveError::NotRelational, true, |prep| {
            Ok(q.holds_somewhere(prep.snapshot()))
        })
    }

    /// `2_M(Q, G_s)` for equality-only queries (Theorem 5): **exact** plain
    /// certain answers for REM=/REE=/RPQs, served from the cached
    /// least-informative solution.
    pub fn certain_answers_least_informative(
        &self,
        q: &CompiledQuery,
    ) -> Result<CertainAnswers, SolveError> {
        require_equality_only(q)?;
        serve(
            self.least_informative(),
            SolveError::NotRelational,
            CertainAnswers::AllVacuously,
            |prep| Ok(CertainAnswers::Pairs(prep.answers_over_dom(q))),
        )
    }

    /// Boolean variant of
    /// [`PreparedMapping::certain_answers_least_informative`].
    pub fn certain_boolean_least_informative(&self, q: &CompiledQuery) -> Result<bool, SolveError> {
        require_equality_only(q)?;
        serve(
            self.least_informative(),
            SolveError::NotRelational,
            true,
            |prep| Ok(q.holds_somewhere(prep.snapshot())),
        )
    }

    /// The serving default: exact `2` answers when the query allows it
    /// (equality-only, Theorem 5), the `2ⁿ` under-approximation otherwise
    /// (Theorem 4).
    pub fn certain_answers(&self, q: &CompiledQuery) -> Result<CertainAnswers, SolveError> {
        if q.is_equality_only() {
            self.certain_answers_least_informative(q)
        } else {
            self.certain_answers_nulls(q)
        }
    }

    /// Exact plain certain answers `2_M(Q, G_s)` (Theorem 2's coNP
    /// procedure), reusing the cached universal solution as the enumeration
    /// skeleton. Exponential in the number of invented nodes; bounded by
    /// `opts`.
    pub fn certain_answers_exact(
        &self,
        q: &DataQuery,
        opts: ExactOptions,
    ) -> Result<CertainAnswers, ExactError> {
        serve(
            self.universal(),
            ExactError::NotRelational,
            CertainAnswers::AllVacuously,
            |prep| exact_answers_from(prep.solution(), q, opts),
        )
    }

    /// Boolean variant of [`PreparedMapping::certain_answers_exact`].
    pub fn certain_boolean_exact(
        &self,
        q: &DataQuery,
        opts: ExactOptions,
    ) -> Result<bool, ExactError> {
        serve(self.universal(), ExactError::NotRelational, true, |prep| {
            exact_boolean_from(prep.solution(), q, opts)
        })
    }
}

/// The shared error policy of every serving method: non-relational
/// mappings are an error; mappings with no solution at all make every
/// answer vacuously certain; otherwise defer to the engine body.
fn serve<T, E>(
    prepared: Result<&PreparedSolution, SolutionError>,
    not_relational: E,
    vacuous: T,
    body: impl FnOnce(&PreparedSolution) -> Result<T, E>,
) -> Result<T, E> {
    match prepared {
        Ok(prep) => body(prep),
        Err(SolutionError::NotRelational) => Err(not_relational),
        Err(SolutionError::NoSolution { .. }) => Ok(vacuous),
    }
}

/// The §8 engines only support the inequality-free fragment.
fn require_equality_only(q: &CompiledQuery) -> Result<(), SolveError> {
    if q.is_equality_only() {
        Ok(())
    } else {
        Err(SolveError::UnsupportedQuery(
            "least-informative engine requires an inequality-free query (REM=/REE=)",
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gde_automata::parse_regex;
    use gde_datagraph::{Alphabet, Value};
    use gde_dataquery::parse_ree;

    /// The same scenario as `certain.rs`: 0(v5) -a-> 1(v5) -a-> 2(v7),
    /// mapping (a, x y).
    fn scenario() -> (Gsm, DataGraph) {
        let mut sa = Alphabet::from_labels(["a"]);
        let mut ta = Alphabet::from_labels(["x", "y"]);
        let mut m = Gsm::new(sa.clone(), ta.clone());
        m.add_rule(
            parse_regex("a", &mut sa).unwrap(),
            parse_regex("x y", &mut ta).unwrap(),
        );
        let mut gs = DataGraph::new();
        gs.add_node(NodeId(0), Value::int(5)).unwrap();
        gs.add_node(NodeId(1), Value::int(5)).unwrap();
        gs.add_node(NodeId(2), Value::int(7)).unwrap();
        gs.add_edge_str(NodeId(0), "a", NodeId(1)).unwrap();
        gs.add_edge_str(NodeId(1), "a", NodeId(2)).unwrap();
        (m, gs)
    }

    #[test]
    fn serves_repeated_queries_from_one_solution() {
        let (m, gs) = scenario();
        let prepared = PreparedMapping::new(&m, &gs);
        let mut ta = m.target_alphabet().clone();
        let q1 = DataQuery::from(parse_regex("x y", &mut ta).unwrap()).compile();
        let q2 = DataQuery::from(parse_ree("(x y)=", &mut ta).unwrap()).compile();
        let a1 = prepared.certain_answers_nulls(&q1).unwrap().into_pairs();
        assert_eq!(a1, vec![(NodeId(0), NodeId(1)), (NodeId(1), NodeId(2))]);
        let a2 = prepared.certain_answers_nulls(&q2).unwrap().into_pairs();
        assert_eq!(a2, vec![(NodeId(0), NodeId(1))]);
        // the universal solution was built exactly once
        let p1 = prepared.universal().unwrap() as *const PreparedSolution;
        let _ = prepared.certain_answers_nulls(&q1).unwrap();
        let p2 = prepared.universal().unwrap() as *const PreparedSolution;
        assert_eq!(p1, p2);
    }

    #[test]
    fn least_informative_engine_and_dispatch() {
        let (m, gs) = scenario();
        let prepared = PreparedMapping::new(&m, &gs);
        let mut ta = m.target_alphabet().clone();
        let eq = DataQuery::from(parse_ree("(x y)=", &mut ta).unwrap()).compile();
        let neq = DataQuery::from(parse_ree("(x y)!=", &mut ta).unwrap()).compile();
        assert_eq!(
            prepared
                .certain_answers_least_informative(&eq)
                .unwrap()
                .into_pairs(),
            vec![(NodeId(0), NodeId(1))]
        );
        assert!(matches!(
            prepared.certain_answers_least_informative(&neq),
            Err(SolveError::UnsupportedQuery(_))
        ));
        // serving default: = dispatches to 2, ≠ to 2ⁿ
        assert_eq!(
            prepared.certain_answers(&eq).unwrap().into_pairs(),
            vec![(NodeId(0), NodeId(1))]
        );
        assert_eq!(
            prepared.certain_answers(&neq).unwrap().into_pairs(),
            vec![(NodeId(1), NodeId(2))]
        );
    }

    #[test]
    fn boolean_engines() {
        let (m, gs) = scenario();
        let prepared = PreparedMapping::new(&m, &gs);
        let mut ta = m.target_alphabet().clone();
        let q = DataQuery::from(parse_ree("x y", &mut ta).unwrap()).compile();
        assert!(prepared.certain_boolean_nulls(&q).unwrap());
        assert!(prepared.certain_boolean_least_informative(&q).unwrap());
        let q3 = DataQuery::from(parse_ree("y y", &mut ta).unwrap()).compile();
        assert!(!prepared.certain_boolean_nulls(&q3).unwrap());
    }

    #[test]
    fn exact_engine_reuses_skeleton() {
        let (m, gs) = scenario();
        let prepared = PreparedMapping::new(&m, &gs);
        let mut ta = m.target_alphabet().clone();
        let q = DataQuery::from(parse_ree("(x y)=", &mut ta).unwrap());
        let exact = prepared
            .certain_answers_exact(&q, ExactOptions::default())
            .unwrap()
            .into_pairs();
        // Theorem 5: for equality-only queries the exact and
        // least-informative engines agree
        let li = prepared
            .certain_answers_least_informative(&q.compile())
            .unwrap()
            .into_pairs();
        assert_eq!(exact, li);
        assert!(prepared
            .certain_boolean_exact(&q, ExactOptions::default())
            .unwrap());
    }

    #[test]
    fn vacuous_and_non_relational_cases() {
        // ε-rule conflict: no solution exists
        let mut sa = Alphabet::from_labels(["a"]);
        let ta = Alphabet::from_labels(["x"]);
        let mut m = Gsm::new(sa.clone(), ta.clone());
        m.add_rule(
            parse_regex("a", &mut sa).unwrap(),
            gde_automata::Regex::Epsilon,
        );
        let mut gs = DataGraph::new();
        gs.add_node(NodeId(0), Value::int(1)).unwrap();
        gs.add_node(NodeId(1), Value::int(2)).unwrap();
        gs.add_edge_str(NodeId(0), "a", NodeId(1)).unwrap();
        let prepared = PreparedMapping::new(&m, &gs);
        let mut ta2 = ta.clone();
        let q = DataQuery::from(parse_ree("x", &mut ta2).unwrap()).compile();
        assert_eq!(
            prepared.certain_answers_nulls(&q).unwrap(),
            CertainAnswers::AllVacuously
        );
        assert!(prepared.certain_boolean_nulls(&q).unwrap());

        // non-relational mapping rejected by every engine
        let (m2, gs2) = scenario();
        let mut m3 = m2.clone();
        let reach = gde_automata::Regex::reachability(m3.target_alphabet());
        m3.add_rule(
            gde_automata::Regex::Atom(m3.source_alphabet().label("a").unwrap()),
            reach,
        );
        let prepared = PreparedMapping::new(&m3, &gs2);
        assert_eq!(
            prepared.certain_answers_nulls(&q).err(),
            Some(SolveError::NotRelational)
        );
    }
}
