//! Seeded fault injection for the serving engine — a facade over
//! [`gde_datagraph::faults`], re-exported here so harnesses that exercise
//! the [`crate::engine::MappingService`] don't reach across crates.
//!
//! The engine compiles its injection points in **always**; they are a
//! single relaxed atomic load when no plan is armed, so production builds
//! pay nothing measurable. The points the serving paths expose:
//!
//! * [`FaultSite::StripeEval`] — top of every per-stripe evaluation
//!   (`shard_pairs` / `shard_holds`), the unit the `try_` fan-outs
//!   contain;
//! * [`FaultSite::Merge`] — entry of every streaming k-way merge;
//! * [`FaultSite::CacheInsert`] — before a sub-relation cache admission;
//! * [`FaultSite::Refreeze`] — top of every solution (re)freeze.
//!
//! Arm a deterministic plan with [`arm`]`(`[`FaultPlan::seeded`]`(seed))`
//! and every decision — which hit of which site panics or stalls — is a
//! pure function of `(seed, site, hit ordinal)`, so a failing soak seed
//! replays exactly. The returned [`ArmedGuard`] disarms on drop.
//!
//! ```
//! use gde_core::faults;
//!
//! let guard = faults::arm(faults::FaultPlan::seeded(42).panic_one_in(3));
//! // ... drive a MappingService; injected panics carry
//! // faults::INJECTED_PANIC_MARKER and are contained by the engine ...
//! drop(guard);
//! assert!(!faults::is_armed());
//! ```

pub use gde_datagraph::faults::{
    arm, disarm, hits, is_armed, is_injected, ArmedGuard, FaultPlan, FaultSite,
    INJECTED_PANIC_MARKER,
};

pub(crate) use gde_datagraph::faults::point;
