//! Dependencies: tuple-generating (tgds) and equality-generating (egds).
//!
//! An st-tgd `∀x̄ (ϕ_σ(x̄) → ∃z̄ ψ_τ(x̄, z̄))` is a [`Tgd`] whose body is read
//! over one instance (the source) and whose head is asserted over another
//! (the target); a target tgd reads and asserts over the same instance.
//! Variables appearing in the head but not the body are existential (the
//! chase Skolemizes them with fresh marked nulls).

use crate::cq::{Atom, ConjunctiveQuery, CqTerm};
use crate::instance::{Instance, Term};
use gde_datagraph::{FxHashMap, FxHashSet};

/// A tuple-generating dependency.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Tgd {
    /// Body atoms (read side).
    pub body: Vec<Atom>,
    /// Head atoms (assert side); may mention existential variables.
    pub head: Vec<Atom>,
}

impl Tgd {
    /// Variables of the body.
    pub fn body_vars(&self) -> FxHashSet<u32> {
        collect_vars(&self.body)
    }

    /// Existential variables: head-only.
    pub fn existential_vars(&self) -> FxHashSet<u32> {
        let body = self.body_vars();
        collect_vars(&self.head)
            .into_iter()
            .filter(|v| !body.contains(v))
            .collect()
    }

    /// Is this a *full* tgd (no existentials)?
    pub fn is_full(&self) -> bool {
        self.existential_vars().is_empty()
    }

    /// Does the pair `(src, dst)` satisfy this dependency? (For target
    /// dependencies pass the same instance twice.)
    pub fn is_satisfied(&self, src: &Instance, dst: &Instance) -> bool {
        let body_q = ConjunctiveQuery {
            head: sorted(self.body_vars()),
            atoms: self.body.clone(),
        };
        let frontier: Vec<u32> = body_q.head.clone();
        'matches: for m in body_q.all_bindings(src) {
            // is there an extension of the frontier satisfying the head in dst?
            let head_q = ConjunctiveQuery {
                head: vec![],
                atoms: self
                    .head
                    .iter()
                    .map(|a| Atom {
                        rel: a.rel,
                        args: a
                            .args
                            .iter()
                            .map(|t| match t {
                                CqTerm::Var(v) if frontier.contains(v) => {
                                    CqTerm::Const(m[v].clone())
                                }
                                other => other.clone(),
                            })
                            .collect(),
                    })
                    .collect(),
            };
            if head_q.holds(dst) {
                continue 'matches;
            }
            return false;
        }
        true
    }

    /// Apply obliviously to every body match, inserting head facts with
    /// fresh nulls for existential variables. Returns the number of facts
    /// added. (One null per (match, variable): the Skolem-oblivious chase.)
    pub fn apply_oblivious(&self, src: &Instance, dst: &mut Instance) -> usize {
        let body_q = ConjunctiveQuery {
            head: sorted(self.body_vars()),
            atoms: self.body.clone(),
        };
        let existentials = sorted(self.existential_vars());
        let mut added = 0;
        for m in body_q.all_bindings(src) {
            let mut assignment: FxHashMap<u32, Term> = m.clone();
            for &z in &existentials {
                let fresh = dst.fresh_null();
                assignment.insert(z, fresh);
            }
            for atom in &self.head {
                let fact: Vec<Term> = atom
                    .args
                    .iter()
                    .map(|t| match t {
                        CqTerm::Var(v) => assignment[v].clone(),
                        CqTerm::Const(c) => c.clone(),
                    })
                    .collect();
                if dst.insert(atom.rel, fact) {
                    added += 1;
                }
            }
        }
        added
    }

    /// Apply in the *standard* (restricted) way: only fire on body matches
    /// whose head is not already satisfied. Returns facts added.
    pub fn apply_standard(&self, src: &Instance, dst: &mut Instance) -> usize {
        let body_q = ConjunctiveQuery {
            head: sorted(self.body_vars()),
            atoms: self.body.clone(),
        };
        let frontier: Vec<u32> = body_q.head.clone();
        let existentials = sorted(self.existential_vars());
        let mut added = 0;
        for m in body_q.all_bindings(src) {
            let head_q = ConjunctiveQuery {
                head: vec![],
                atoms: self
                    .head
                    .iter()
                    .map(|a| Atom {
                        rel: a.rel,
                        args: a
                            .args
                            .iter()
                            .map(|t| match t {
                                CqTerm::Var(v) if frontier.contains(v) => {
                                    CqTerm::Const(m[v].clone())
                                }
                                other => other.clone(),
                            })
                            .collect(),
                    })
                    .collect(),
            };
            if head_q.holds(dst) {
                continue;
            }
            let mut assignment: FxHashMap<u32, Term> = m.clone();
            for &z in &existentials {
                let fresh = dst.fresh_null();
                assignment.insert(z, fresh);
            }
            for atom in &self.head {
                let fact: Vec<Term> = atom
                    .args
                    .iter()
                    .map(|t| match t {
                        CqTerm::Var(v) => assignment[v].clone(),
                        CqTerm::Const(c) => c.clone(),
                    })
                    .collect();
                if dst.insert(atom.rel, fact) {
                    added += 1;
                }
            }
        }
        added
    }
}

/// An equality-generating dependency `∀x̄ (ϕ(x̄) → x = y)`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Egd {
    /// Body atoms.
    pub body: Vec<Atom>,
    /// Pairs of variables equated by the head.
    pub equalities: Vec<(u32, u32)>,
}

impl Egd {
    /// Is the egd satisfied by the instance?
    pub fn is_satisfied(&self, db: &Instance) -> bool {
        let q = ConjunctiveQuery {
            head: sorted(collect_vars(&self.body)),
            atoms: self.body.clone(),
        };
        q.all_bindings(db)
            .into_iter()
            .all(|m| self.equalities.iter().all(|(x, y)| m[x] == m[y]))
    }
}

fn collect_vars(atoms: &[Atom]) -> FxHashSet<u32> {
    let mut out = FxHashSet::default();
    for a in atoms {
        for t in &a.args {
            if let CqTerm::Var(v) = t {
                out.insert(*v);
            }
        }
    }
    out
}

fn sorted(s: FxHashSet<u32>) -> Vec<u32> {
    let mut v: Vec<u32> = s.into_iter().collect();
    v.sort_unstable();
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::RelSchema;
    use gde_datagraph::NodeId;

    fn node(i: u32) -> Term {
        Term::Node(NodeId(i))
    }

    /// S(x,y) → ∃z T(x,z) ∧ T(z,y)
    fn split_tgd(s: crate::schema::RelId, t: crate::schema::RelId) -> Tgd {
        Tgd {
            body: vec![Atom::vars(s, [0, 1])],
            head: vec![Atom::vars(t, [0, 2]), Atom::vars(t, [2, 1])],
        }
    }

    fn setup() -> (
        Instance,
        Instance,
        crate::schema::RelId,
        crate::schema::RelId,
    ) {
        let mut sch_s = RelSchema::new();
        let s = sch_s.relation("S", 2);
        let mut sch_t = RelSchema::new();
        let t = sch_t.relation("T", 2);
        let mut src = Instance::new(sch_s);
        src.insert(s, vec![node(0), node(1)]);
        src.insert(s, vec![node(2), node(3)]);
        let dst = Instance::new(sch_t);
        (src, dst, s, t)
    }

    #[test]
    fn variable_classification() {
        let (.., s, t) = setup();
        let tgd = split_tgd(s, t);
        assert_eq!(tgd.body_vars().len(), 2);
        assert_eq!(tgd.existential_vars(), [2].into_iter().collect());
        assert!(!tgd.is_full());
    }

    #[test]
    fn oblivious_application() {
        let (src, mut dst, s, t) = setup();
        let tgd = split_tgd(s, t);
        let added = tgd.apply_oblivious(&src, &mut dst);
        assert_eq!(added, 4); // two matches × two head atoms
        assert_eq!(dst.nulls().len(), 2); // one fresh null per match
        assert!(tgd.is_satisfied(&src, &dst));
    }

    #[test]
    fn standard_application_skips_satisfied() {
        let (src, mut dst, s, t) = setup();
        let tgd = split_tgd(s, t);
        // pre-satisfy the first match
        dst.insert(t, vec![node(0), node(9)]);
        dst.insert(t, vec![node(9), node(1)]);
        let added = tgd.apply_standard(&src, &mut dst);
        assert_eq!(added, 2); // only the (2,3) match fires
        assert_eq!(dst.nulls().len(), 1);
        assert!(tgd.is_satisfied(&src, &dst));
    }

    #[test]
    fn satisfaction_detects_missing_head() {
        let (src, dst, s, t) = setup();
        let tgd = split_tgd(s, t);
        assert!(!tgd.is_satisfied(&src, &dst));
    }

    #[test]
    fn egd_checks() {
        let mut sch = RelSchema::new();
        let n = sch.relation("N", 2);
        let mut db = Instance::new(sch);
        db.insert(n, vec![node(0), Term::Null(0)]);
        db.insert(n, vec![node(0), Term::Null(1)]);
        // key: N(x,y) ∧ N(x,y') → y = y'
        let egd = Egd {
            body: vec![Atom::vars(n, [0, 1]), Atom::vars(n, [0, 2])],
            equalities: vec![(1, 2)],
        };
        assert!(!egd.is_satisfied(&db));
        db.substitute(&Term::Null(1), &Term::Null(0));
        assert!(egd.is_satisfied(&db));
    }

    #[test]
    fn full_tgd() {
        let mut sch = RelSchema::new();
        let e = sch.relation("E", 2);
        let r = sch.relation("Reach", 2);
        let tgd = Tgd {
            body: vec![Atom::vars(e, [0, 1])],
            head: vec![Atom::vars(r, [0, 1])],
        };
        assert!(tgd.is_full());
        let mut db = Instance::new(sch);
        db.insert(e, vec![node(0), node(1)]);
        let mut out = db.clone();
        tgd.apply_oblivious(&db, &mut out);
        assert!(out.contains(r, &[node(0), node(1)]));
    }
}
