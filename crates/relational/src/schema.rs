//! Relation symbols and schemas.

use gde_datagraph::FxHashMap;
use std::fmt;

/// An interned relation symbol.
#[derive(Copy, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct RelId(pub u16);

impl RelId {
    /// Dense index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for RelId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "R{}", self.0)
    }
}

/// A relational schema: named relations with fixed arities.
#[derive(Clone, Debug, Default)]
pub struct RelSchema {
    names: Vec<(String, usize)>,
    index: FxHashMap<String, RelId>,
}

impl RelSchema {
    /// Empty schema.
    pub fn new() -> RelSchema {
        RelSchema::default()
    }

    /// Add (or look up) a relation with the given arity.
    ///
    /// # Panics
    /// Panics if the relation exists with a different arity.
    pub fn relation(&mut self, name: &str, arity: usize) -> RelId {
        if let Some(&id) = self.index.get(name) {
            assert_eq!(
                self.names[id.index()].1,
                arity,
                "relation {name} redeclared with different arity"
            );
            return id;
        }
        let id = RelId(u16::try_from(self.names.len()).expect("schema overflow"));
        self.names.push((name.to_string(), arity));
        self.index.insert(name.to_string(), id);
        id
    }

    /// Look up an existing relation.
    pub fn lookup(&self, name: &str) -> Option<RelId> {
        self.index.get(name).copied()
    }

    /// Relation name.
    pub fn name(&self, id: RelId) -> &str {
        &self.names[id.index()].0
    }

    /// Relation arity.
    pub fn arity(&self, id: RelId) -> usize {
        self.names[id.index()].1
    }

    /// Number of relations.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Is the schema empty?
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// All relation ids.
    pub fn relations(&self) -> impl Iterator<Item = RelId> + '_ {
        (0..self.names.len()).map(|i| RelId(i as u16))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn declare_and_lookup() {
        let mut s = RelSchema::new();
        let r = s.relation("E_a", 2);
        let n = s.relation("N", 2);
        assert_ne!(r, n);
        assert_eq!(s.lookup("E_a"), Some(r));
        assert_eq!(s.lookup("missing"), None);
        assert_eq!(s.arity(n), 2);
        assert_eq!(s.name(r), "E_a");
        assert_eq!(s.len(), 2);
        // idempotent
        assert_eq!(s.relation("E_a", 2), r);
    }

    #[test]
    #[should_panic(expected = "different arity")]
    fn arity_conflict_panics() {
        let mut s = RelSchema::new();
        s.relation("R", 2);
        s.relation("R", 3);
    }
}
