//! Conjunctive queries and their evaluation.
//!
//! `q(x̄) := ∃z̄ ⋀ᵢ Rᵢ(t̄ᵢ)` — evaluation is a straightforward backtracking
//! join over the instance, matching nulls syntactically (naive evaluation,
//! which is exactly what certain-answer semantics over canonical universal
//! solutions calls for, cf. Fagin et al.).

use crate::instance::{Instance, Term};
use crate::schema::RelId;
use gde_datagraph::FxHashMap;

/// A term in a query atom: a variable or a constant.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CqTerm {
    /// A variable (by numeric id).
    Var(u32),
    /// A constant term.
    Const(Term),
}

/// One relational atom `R(t̄)`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Atom {
    /// Relation symbol.
    pub rel: RelId,
    /// Argument terms.
    pub args: Vec<CqTerm>,
}

impl Atom {
    /// Atom with all-variable arguments.
    pub fn vars(rel: RelId, vars: impl IntoIterator<Item = u32>) -> Atom {
        Atom {
            rel,
            args: vars.into_iter().map(CqTerm::Var).collect(),
        }
    }
}

/// A conjunctive query with designated head variables.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ConjunctiveQuery {
    /// Free (answer) variables.
    pub head: Vec<u32>,
    /// Body atoms.
    pub atoms: Vec<Atom>,
}

impl ConjunctiveQuery {
    /// Evaluate, returning the set of head-variable bindings (deduplicated,
    /// sorted for determinism).
    pub fn eval(&self, db: &Instance) -> Vec<Vec<Term>> {
        let mut results: Vec<Vec<Term>> = Vec::new();
        let mut binding: FxHashMap<u32, Term> = FxHashMap::default();
        self.join(db, 0, &mut binding, &mut results);
        results.sort();
        results.dedup();
        results
    }

    /// Boolean evaluation: does the body have any match?
    pub fn holds(&self, db: &Instance) -> bool {
        let mut binding: FxHashMap<u32, Term> = FxHashMap::default();
        self.any_match(db, 0, &mut binding)
    }

    /// All matches as full variable bindings (used by the chase).
    pub fn all_bindings(&self, db: &Instance) -> Vec<FxHashMap<u32, Term>> {
        let mut out = Vec::new();
        let mut binding: FxHashMap<u32, Term> = FxHashMap::default();
        self.collect_bindings(db, 0, &mut binding, &mut out);
        out
    }

    fn join(
        &self,
        db: &Instance,
        i: usize,
        binding: &mut FxHashMap<u32, Term>,
        results: &mut Vec<Vec<Term>>,
    ) {
        if i == self.atoms.len() {
            results.push(
                self.head
                    .iter()
                    .map(|v| binding.get(v).cloned().expect("unbound head variable"))
                    .collect(),
            );
            return;
        }
        self.for_each_match(db, i, binding, &mut |db, binding| {
            self.join(db, i + 1, binding, results)
        });
    }

    fn any_match(&self, db: &Instance, i: usize, binding: &mut FxHashMap<u32, Term>) -> bool {
        if i == self.atoms.len() {
            return true;
        }
        let mut found = false;
        self.for_each_match(db, i, binding, &mut |db, binding| {
            if !found {
                found = self.any_match(db, i + 1, binding);
            }
        });
        found
    }

    fn collect_bindings(
        &self,
        db: &Instance,
        i: usize,
        binding: &mut FxHashMap<u32, Term>,
        out: &mut Vec<FxHashMap<u32, Term>>,
    ) {
        if i == self.atoms.len() {
            out.push(binding.clone());
            return;
        }
        self.for_each_match(db, i, binding, &mut |db, binding| {
            self.collect_bindings(db, i + 1, binding, out)
        });
    }

    fn for_each_match(
        &self,
        db: &Instance,
        i: usize,
        binding: &mut FxHashMap<u32, Term>,
        then: &mut dyn FnMut(&Instance, &mut FxHashMap<u32, Term>),
    ) {
        let atom = &self.atoms[i];
        // Collect candidate facts; unify argument-wise.
        let facts: Vec<Vec<Term>> = db.facts(atom.rel).map(|f| f.to_vec()).collect();
        'facts: for fact in facts {
            let mut newly_bound: Vec<u32> = Vec::new();
            for (arg, val) in atom.args.iter().zip(fact.iter()) {
                match arg {
                    CqTerm::Const(c) => {
                        if c != val {
                            for v in newly_bound.drain(..) {
                                binding.remove(&v);
                            }
                            continue 'facts;
                        }
                    }
                    CqTerm::Var(v) => match binding.get(v) {
                        Some(bound) => {
                            if bound != val {
                                for v in newly_bound.drain(..) {
                                    binding.remove(&v);
                                }
                                continue 'facts;
                            }
                        }
                        None => {
                            binding.insert(*v, val.clone());
                            newly_bound.push(*v);
                        }
                    },
                }
            }
            then(db, binding);
            for v in newly_bound {
                binding.remove(&v);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::RelSchema;
    use gde_datagraph::{NodeId, Value};

    fn node(i: u32) -> Term {
        Term::Node(NodeId(i))
    }

    /// E = {(0,1),(1,2),(2,0)}, N = {(0,"x"),(1,"y"),(2,"x")}
    fn db() -> (Instance, RelId, RelId) {
        let mut s = RelSchema::new();
        let e = s.relation("E", 2);
        let n = s.relation("N", 2);
        let mut i = Instance::new(s);
        for (a, b) in [(0, 1), (1, 2), (2, 0)] {
            i.insert(e, vec![node(a), node(b)]);
        }
        for (a, v) in [(0, "x"), (1, "y"), (2, "x")] {
            i.insert(n, vec![node(a), Term::Val(Value::str(v))]);
        }
        (i, e, n)
    }

    #[test]
    fn single_atom() {
        let (db, e, _) = db();
        let q = ConjunctiveQuery {
            head: vec![0, 1],
            atoms: vec![Atom::vars(e, [0, 1])],
        };
        assert_eq!(q.eval(&db).len(), 3);
    }

    #[test]
    fn join_two_hops() {
        let (db, e, _) = db();
        let q = ConjunctiveQuery {
            head: vec![0, 2],
            atoms: vec![Atom::vars(e, [0, 1]), Atom::vars(e, [1, 2])],
        };
        let res = q.eval(&db);
        assert_eq!(res.len(), 3);
        assert!(res.contains(&vec![node(0), node(2)]));
    }

    #[test]
    fn constants_filter() {
        let (db, e, n) = db();
        // nodes with value "x" that have an outgoing edge to y
        let q = ConjunctiveQuery {
            head: vec![0, 1],
            atoms: vec![
                Atom {
                    rel: n,
                    args: vec![CqTerm::Var(0), CqTerm::Const(Term::Val(Value::str("x")))],
                },
                Atom::vars(e, [0, 1]),
            ],
        };
        let res = q.eval(&db);
        assert_eq!(res.len(), 2); // 0->1 and 2->0
    }

    #[test]
    fn repeated_variable_enforces_equality() {
        let (db, e, _) = db();
        // self loops: none
        let q = ConjunctiveQuery {
            head: vec![0],
            atoms: vec![Atom::vars(e, [0, 0])],
        };
        assert!(q.eval(&db).is_empty());
        assert!(!q.holds(&db));
    }

    #[test]
    fn boolean_and_bindings() {
        let (db, e, n) = db();
        // exists an edge between two nodes with the same value
        let q = ConjunctiveQuery {
            head: vec![],
            atoms: vec![
                Atom::vars(e, [0, 1]),
                Atom::vars(n, [0, 2]),
                Atom::vars(n, [1, 2]),
            ],
        };
        // values: 0:x -> 1:y (no), 1:y -> 2:x (no), 2:x -> 0:x (yes)
        assert!(q.holds(&db));
        let bindings = q.all_bindings(&db);
        assert_eq!(bindings.len(), 1);
        assert_eq!(bindings[0][&0], node(2));
    }

    #[test]
    fn nulls_match_syntactically() {
        let mut s = RelSchema::new();
        let r = s.relation("R", 2);
        let mut i = Instance::new(s);
        i.insert(r, vec![Term::Null(0), Term::Null(0)]);
        i.insert(r, vec![Term::Null(1), Term::Null(2)]);
        let q = ConjunctiveQuery {
            head: vec![0],
            atoms: vec![Atom::vars(r, [0, 0])],
        };
        let res = q.eval(&i);
        assert_eq!(res, vec![vec![Term::Null(0)]]);
    }
}
