//! Certain answers on the relational side: naive evaluation over canonical
//! universal solutions (the classic Fagin–Kolaitis–Miller–Popa result).
//!
//! For a union of conjunctive queries `Q` and a canonical universal
//! solution `J` (as produced by [`crate::chase_st`]), the certain answers
//! of `Q` over all solutions are exactly the `Q(J)`-tuples containing **no
//! marked nulls** — "naive evaluation". This module provides that and the
//! corresponding Boolean form, closing the loop with the graph-side
//! engines through Proposition 1 (see the facade integration tests).

use crate::cq::ConjunctiveQuery;
use crate::instance::{Instance, Term};

/// Certain answers of a CQ over a canonical universal solution: evaluate
/// naively, keep null-free tuples. Sorted and deduplicated.
pub fn certain_answers_cq(universal: &Instance, q: &ConjunctiveQuery) -> Vec<Vec<Term>> {
    q.eval(universal)
        .into_iter()
        .filter(|tuple| tuple.iter().all(|t| !t.is_null()))
        .collect()
}

/// Certain answers of a union of CQs (same head arity).
pub fn certain_answers_ucq(universal: &Instance, qs: &[ConjunctiveQuery]) -> Vec<Vec<Term>> {
    let mut out: Vec<Vec<Term>> = qs
        .iter()
        .flat_map(|q| certain_answers_cq(universal, q))
        .collect();
    out.sort();
    out.dedup();
    out
}

/// Boolean certain answer: does the (null-tolerant) query hold in every
/// solution? For Boolean CQs naive evaluation needs no null filtering — a
/// match using nulls still witnesses the query in every solution (nulls map
/// to *some* values under every homomorphism).
pub fn certain_boolean_cq(universal: &Instance, q: &ConjunctiveQuery) -> bool {
    q.holds(universal)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cq::Atom;
    use crate::schema::RelSchema;
    use crate::tgd::Tgd;
    use gde_datagraph::NodeId;

    fn node(i: u32) -> Term {
        Term::Node(NodeId(i))
    }

    /// Source S(0,1); tgd S(x,y) → ∃z T(x,z) ∧ T(z,y).
    fn chased() -> (Instance, crate::schema::RelId) {
        let mut ss = RelSchema::new();
        let s = ss.relation("S", 2);
        let mut ts = RelSchema::new();
        let t = ts.relation("T", 2);
        let mut src = Instance::new(ss);
        src.insert(s, vec![node(0), node(1)]);
        let tgd = Tgd {
            body: vec![Atom::vars(s, [0, 1])],
            head: vec![Atom::vars(t, [0, 2]), Atom::vars(t, [2, 1])],
        };
        (crate::chase::chase_st(&src, &[tgd], ts), t)
    }

    #[test]
    fn naive_evaluation_filters_nulls() {
        let (j, t) = chased();
        // Q(x,y) :- T(x,z), T(z,y): the certain pair (0,1)
        let q = ConjunctiveQuery {
            head: vec![0, 1],
            atoms: vec![Atom::vars(t, [0, 2]), Atom::vars(t, [2, 1])],
        };
        assert_eq!(certain_answers_cq(&j, &q), vec![vec![node(0), node(1)]]);
        // Q(x,z) :- T(x,z): the only answers go through the null — none
        // certain
        let q = ConjunctiveQuery {
            head: vec![0, 1],
            atoms: vec![Atom::vars(t, [0, 1])],
        };
        assert!(certain_answers_cq(&j, &q).is_empty());
        // but the Boolean version is certain (some T-edge exists everywhere)
        assert!(certain_boolean_cq(&j, &q));
    }

    #[test]
    fn ucq_unions_and_dedups() {
        let (j, t) = chased();
        let q1 = ConjunctiveQuery {
            head: vec![0, 1],
            atoms: vec![Atom::vars(t, [0, 2]), Atom::vars(t, [2, 1])],
        };
        let both = certain_answers_ucq(&j, &[q1.clone(), q1]);
        assert_eq!(both.len(), 1);
    }
}
