//! The chase: canonical universal solutions for relational mappings.
//!
//! * [`chase_st`] — one oblivious round of all st-tgds from a source
//!   instance into a fresh target instance: the canonical pre-solution of
//!   relational data exchange (Fagin–Kolaitis–Miller–Popa).
//! * [`chase_target`] — saturate full/existential target tgds to fixpoint
//!   (bounded; reports non-termination past the bound).
//! * [`chase_egds`] — apply egds, unifying marked nulls; fails on an
//!   attempt to equate two distinct constants (hard violation).

use crate::cq::ConjunctiveQuery;
use crate::instance::{Instance, Term};
use crate::schema::RelSchema;
use crate::tgd::{Egd, Tgd};
use std::fmt;

/// Chase failure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ChaseError {
    /// An egd required `c = c'` for distinct constants.
    EgdConflict(Term, Term),
    /// Target-tgd saturation exceeded the round budget.
    NonTerminating {
        /// Rounds executed before giving up.
        rounds: usize,
    },
}

impl fmt::Display for ChaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ChaseError::EgdConflict(a, b) => write!(f, "egd conflict: {a} = {b} is unsatisfiable"),
            ChaseError::NonTerminating { rounds } => {
                write!(f, "target chase did not terminate within {rounds} rounds")
            }
        }
    }
}

impl std::error::Error for ChaseError {}

/// One oblivious source-to-target chase round: every body match of every
/// st-tgd fires once, Skolemizing existentials with fresh marked nulls.
/// This produces the canonical universal pre-solution.
pub fn chase_st(source: &Instance, st_tgds: &[Tgd], target_schema: RelSchema) -> Instance {
    let mut target = Instance::new(target_schema);
    for tgd in st_tgds {
        tgd.apply_oblivious(source, &mut target);
    }
    target
}

/// Saturate target tgds to a fixpoint using the standard (restricted)
/// chase; gives up after `max_rounds` rounds.
pub fn chase_target(
    instance: &mut Instance,
    tgds: &[Tgd],
    max_rounds: usize,
) -> Result<(), ChaseError> {
    for _ in 0..max_rounds {
        let mut added = 0;
        for tgd in tgds {
            let snapshot = instance.clone();
            added += tgd.apply_standard(&snapshot, instance);
        }
        if added == 0 {
            return Ok(());
        }
    }
    // One more check: maybe the last round reached the fixpoint exactly.
    if tgds.iter().all(|t| t.is_satisfied(instance, instance)) {
        return Ok(());
    }
    Err(ChaseError::NonTerminating { rounds: max_rounds })
}

/// Apply egds to fixpoint: equated pairs are resolved by substituting nulls
/// (null := other side); equating two distinct non-null terms is a hard
/// failure.
pub fn chase_egds(instance: &mut Instance, egds: &[Egd]) -> Result<(), ChaseError> {
    loop {
        let mut changed = false;
        for egd in egds {
            let q = ConjunctiveQuery {
                head: {
                    let mut vars: Vec<u32> = egd
                        .body
                        .iter()
                        .flat_map(|a| {
                            a.args.iter().filter_map(|t| match t {
                                crate::cq::CqTerm::Var(v) => Some(*v),
                                _ => None,
                            })
                        })
                        .collect();
                    vars.sort_unstable();
                    vars.dedup();
                    vars
                },
                atoms: egd.body.clone(),
            };
            // Find one violation, fix it, restart (substitution invalidates matches).
            let bindings = q.all_bindings(instance);
            'seek: for m in bindings {
                for (x, y) in &egd.equalities {
                    let (a, b) = (&m[x], &m[y]);
                    if a == b {
                        continue;
                    }
                    match (a.is_null(), b.is_null()) {
                        (true, _) => instance.substitute(a, b),
                        (false, true) => instance.substitute(b, a),
                        (false, false) => {
                            return Err(ChaseError::EgdConflict(a.clone(), b.clone()))
                        }
                    }
                    changed = true;
                    break 'seek;
                }
            }
        }
        if !changed {
            return Ok(());
        }
    }
}

/// Does `(source, target)` satisfy all dependencies? Convenience wrapper for
/// tests and Proposition-1 validation.
pub fn satisfies_all(source: &Instance, target: &Instance, st_tgds: &[Tgd], egds: &[Egd]) -> bool {
    st_tgds.iter().all(|t| t.is_satisfied(source, target))
        && egds.iter().all(|e| e.is_satisfied(target))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cq::Atom;
    use crate::schema::RelSchema;
    use gde_datagraph::NodeId;

    fn node(i: u32) -> Term {
        Term::Node(NodeId(i))
    }

    #[test]
    fn chase_st_produces_universal_presolution() {
        let mut ss = RelSchema::new();
        let s = ss.relation("S", 2);
        let mut ts = RelSchema::new();
        let t = ts.relation("T", 2);
        let tgd = Tgd {
            body: vec![Atom::vars(s, [0, 1])],
            head: vec![Atom::vars(t, [0, 2]), Atom::vars(t, [2, 1])],
        };
        let mut src = Instance::new(ss);
        src.insert(s, vec![node(0), node(1)]);
        src.insert(s, vec![node(2), node(3)]);
        let tgt = chase_st(&src, std::slice::from_ref(&tgd), ts);
        assert_eq!(tgt.total_facts(), 4);
        assert_eq!(tgt.nulls().len(), 2);
        assert!(tgd.is_satisfied(&src, &tgt));
    }

    #[test]
    fn target_chase_terminates_on_full_tgds() {
        let mut sch = RelSchema::new();
        let e = sch.relation("E", 2);
        let r = sch.relation("Reach", 2);
        // E(x,y) → Reach(x,y); Reach(x,y) ∧ E(y,z) → Reach(x,z)
        let t1 = Tgd {
            body: vec![Atom::vars(e, [0, 1])],
            head: vec![Atom::vars(r, [0, 1])],
        };
        let t2 = Tgd {
            body: vec![Atom::vars(r, [0, 1]), Atom::vars(e, [1, 2])],
            head: vec![Atom::vars(r, [0, 2])],
        };
        let mut db = Instance::new(sch);
        for (a, b) in [(0, 1), (1, 2), (2, 3)] {
            db.insert(e, vec![node(a), node(b)]);
        }
        chase_target(&mut db, &[t1, t2], 100).unwrap();
        assert!(db.contains(r, &[node(0), node(3)]));
        assert_eq!(db.fact_count(r), 6);
    }

    #[test]
    fn target_chase_reports_divergence() {
        let mut sch = RelSchema::new();
        let e = sch.relation("E", 2);
        // E(x,y) → ∃z E(y,z): classic non-terminating chase
        let t = Tgd {
            body: vec![Atom::vars(e, [0, 1])],
            head: vec![Atom::vars(e, [1, 2])],
        };
        let mut db = Instance::new(sch);
        db.insert(e, vec![node(0), node(1)]);
        let err = chase_target(&mut db, &[t], 5).unwrap_err();
        assert!(matches!(err, ChaseError::NonTerminating { .. }));
    }

    #[test]
    fn egd_unifies_nulls() {
        let mut sch = RelSchema::new();
        let n = sch.relation("N", 2);
        let mut db = Instance::new(sch);
        db.insert(n, vec![node(0), Term::Null(0)]);
        db.insert(n, vec![node(0), Term::Null(1)]);
        db.insert(n, vec![node(1), Term::Null(1)]);
        let key = Egd {
            body: vec![Atom::vars(n, [0, 1]), Atom::vars(n, [0, 2])],
            equalities: vec![(1, 2)],
        };
        chase_egds(&mut db, std::slice::from_ref(&key)).unwrap();
        assert!(key.is_satisfied(&db));
        assert_eq!(db.fact_count(n), 2);
        assert_eq!(db.nulls().len(), 1);
    }

    #[test]
    fn egd_conflict_on_constants() {
        use gde_datagraph::Value;
        let mut sch = RelSchema::new();
        let n = sch.relation("N", 2);
        let mut db = Instance::new(sch);
        db.insert(n, vec![node(0), Term::Val(Value::int(1))]);
        db.insert(n, vec![node(0), Term::Val(Value::int(2))]);
        let key = Egd {
            body: vec![Atom::vars(n, [0, 1]), Atom::vars(n, [0, 2])],
            equalities: vec![(1, 2)],
        };
        let err = chase_egds(&mut db, &[key]).unwrap_err();
        assert!(matches!(err, ChaseError::EgdConflict(..)));
    }

    #[test]
    fn egd_null_vs_constant_resolves_to_constant() {
        use gde_datagraph::Value;
        let mut sch = RelSchema::new();
        let n = sch.relation("N", 2);
        let mut db = Instance::new(sch);
        db.insert(n, vec![node(0), Term::Val(Value::int(1))]);
        db.insert(n, vec![node(0), Term::Null(7)]);
        let key = Egd {
            body: vec![Atom::vars(n, [0, 1]), Atom::vars(n, [0, 2])],
            equalities: vec![(1, 2)],
        };
        chase_egds(&mut db, &[key]).unwrap();
        assert_eq!(db.fact_count(n), 1);
        assert!(db.contains(n, &[node(0), Term::Val(Value::int(1))]));
    }
}
