//! # gde-relational
//!
//! A relational data-exchange substrate, built to make Proposition 1 of
//! *Schema Mappings for Data Graphs* (PODS'17) executable: relational graph
//! schema mappings can be cast as ordinary relational schema mappings over
//! the standard relational representation `D_G` of a data graph.
//!
//! Components:
//!
//! * [`RelSchema`] / [`Instance`] — named relations over terms that are
//!   graph nodes, data values, or marked (labelled) nulls ([`Term`]);
//! * [`ConjunctiveQuery`] — CQ evaluation by backtracking join;
//! * [`Tgd`] / [`Egd`] — tuple- and equality-generating dependencies,
//!   including source-to-target tgds;
//! * [`chase`] — the oblivious chase producing canonical universal
//!   solutions, EGD application with null unification, and dependency
//!   satisfaction checks;
//! * [`encode`] — the `G ↦ D_G` encoding of §6 (`Nˢ(node, value)` plus one
//!   binary `E_a` per label) and its inverse, with a choice of how value
//!   nulls decode (SQL null vs fresh distinct constants — the two solution
//!   styles of §7 and §8).

#![deny(unsafe_code)]

pub mod certain;
pub mod chase;
pub mod cq;
pub mod encode;
pub mod instance;
pub mod schema;
pub mod tgd;

pub use certain::{certain_answers_cq, certain_answers_ucq, certain_boolean_cq};
pub use chase::{chase_egds, chase_st, chase_target, satisfies_all, ChaseError};
pub use cq::{Atom, ConjunctiveQuery, CqTerm};
pub use encode::{decode_graph, encode_graph, GraphSchema, ValueNullStyle};
pub use instance::{Instance, Term};
pub use schema::{RelId, RelSchema};
pub use tgd::{Egd, Tgd};
