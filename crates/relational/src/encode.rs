//! The relational representation `D_G` of a data graph (§6 of the paper).
//!
//! `D_G` uses a binary relation `N(node, value)` holding every node with its
//! data value, plus one binary relation `E_a(node, node)` per label `a`.
//! (The paper's unary domain predicates `N(x)`/`D(x)` are subsumed by the
//! [`Term`] type, which keeps node ids and data values disjoint by
//! construction.)
//!
//! Decoding an instance back into a graph must decide what to do with
//! marked nulls produced by the chase:
//!
//! * nulls in node position always become fresh node ids;
//! * nulls in value position become either the single SQL null `n`
//!   ([`ValueNullStyle::SqlNull`], §7's universal solutions) or pairwise
//!   distinct fresh constants ([`ValueNullStyle::FreshConstants`], §8's
//!   least informative solutions).

use crate::instance::{Instance, Term};
use crate::schema::{RelId, RelSchema};
use gde_datagraph::{Alphabet, DataGraph, FxHashMap, NodeId, Value};

/// Relation ids of a graph schema: `N` plus one `E_a` per label.
#[derive(Clone, Debug)]
pub struct GraphSchema {
    /// The relational schema.
    pub schema: RelSchema,
    /// The `N(node, value)` relation.
    pub node_rel: RelId,
    /// `E_a` relations in label order of the alphabet used to build this.
    pub edge_rels: Vec<RelId>,
}

impl GraphSchema {
    /// Build the relational schema for a graph alphabet.
    pub fn for_alphabet(alphabet: &Alphabet) -> GraphSchema {
        let mut schema = RelSchema::new();
        let node_rel = schema.relation("N", 2);
        let edge_rels = alphabet
            .iter()
            .map(|(_, name)| schema.relation(&format!("E_{name}"), 2))
            .collect();
        GraphSchema {
            schema,
            node_rel,
            edge_rels,
        }
    }
}

/// Encode `G` as `D_G`.
pub fn encode_graph(g: &DataGraph) -> (GraphSchema, Instance) {
    let gs = GraphSchema::for_alphabet(g.alphabet());
    let mut inst = Instance::new(gs.schema.clone());
    for (id, v) in g.nodes() {
        inst.insert(gs.node_rel, vec![Term::Node(id), Term::Val(v.clone())]);
    }
    for (u, l, v) in g.edges() {
        inst.insert(gs.edge_rels[l.index()], vec![Term::Node(u), Term::Node(v)]);
    }
    (gs, inst)
}

/// How to decode value-position nulls.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum ValueNullStyle {
    /// Every value null becomes the single SQL null `n` (§7).
    SqlNull,
    /// Every value null becomes a distinct fresh constant (§8).
    FreshConstants,
}

/// Decode `D_G` back into a data graph over the given alphabet (the
/// alphabet's labels must match the instance's `E_a` relations by name).
///
/// Node terms may be marked nulls (chase-invented nodes); these are
/// assigned fresh node ids above `id_watermark`. Value nulls decode per
/// `style`. A node mentioned only in edge relations (no `N` fact) gets the
/// null value. If `N` assigns several values to one node (key violation),
/// the offending node is returned as an error.
pub fn decode_graph(
    inst: &Instance,
    alphabet: &Alphabet,
    style: ValueNullStyle,
    id_watermark: u32,
) -> Result<DataGraph, NodeId> {
    let mut g = DataGraph::with_alphabet(alphabet.clone());
    g.reserve_ids(id_watermark);
    let node_rel = inst
        .schema()
        .lookup("N")
        .expect("instance lacks the N relation");

    // First pass: resolve node terms to node ids.
    let mut null_nodes: FxHashMap<u32, NodeId> = FxHashMap::default();
    let mut fresh_vals: FxHashMap<u32, Value> = FxHashMap::default();
    let mut fresh_val_counter = 0u64;

    let mut resolve_node = |g: &mut DataGraph, t: &Term| -> NodeId {
        match t {
            Term::Node(n) => *n,
            Term::Null(k) => *null_nodes.entry(*k).or_insert_with(|| {
                let id = NodeId(g.fresh_id_watermark());
                g.reserve_ids(id.0 + 1);
                id
            }),
            Term::Val(_) => panic!("value term in node position"),
        }
    };

    let mut resolve_val = |t: &Term| -> Value {
        match t {
            Term::Val(v) => v.clone(),
            Term::Null(k) => match style {
                ValueNullStyle::SqlNull => Value::Null,
                ValueNullStyle::FreshConstants => fresh_vals
                    .entry(*k)
                    .or_insert_with(|| {
                        fresh_val_counter += 1;
                        Value::str(format!("⊥{fresh_val_counter}"))
                    })
                    .clone(),
            },
            Term::Node(_) => panic!("node term in value position"),
        }
    };

    for fact in inst.facts(node_rel) {
        let id = resolve_node(&mut g, &fact[0]);
        let val = resolve_val(&fact[1]);
        match g.value(id) {
            None => g.add_node(id, val).expect("fresh"),
            Some(existing) if *existing == val => {}
            Some(_) => return Err(id),
        }
    }

    // Second pass: edges; endpoints without N-facts get the null value.
    for (label, name) in alphabet.iter() {
        let Some(rel) = inst.schema().lookup(&format!("E_{name}")) else {
            continue;
        };
        for fact in inst.facts(rel) {
            let u = resolve_node(&mut g, &fact[0]);
            let v = resolve_node(&mut g, &fact[1]);
            for id in [u, v] {
                if !g.has_node(id) {
                    let val = match style {
                        ValueNullStyle::SqlNull => Value::Null,
                        ValueNullStyle::FreshConstants => {
                            fresh_val_counter += 1;
                            Value::str(format!("⊥{fresh_val_counter}"))
                        }
                    };
                    g.add_node(id, val).expect("fresh");
                }
            }
            g.add_edge(u, label, v).expect("nodes exist");
        }
    }
    Ok(g)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gde_datagraph::Value;

    fn sample() -> DataGraph {
        let mut g = DataGraph::new();
        g.add_node(NodeId(0), Value::int(1)).unwrap();
        g.add_node(NodeId(1), Value::str("x")).unwrap();
        g.add_edge_str(NodeId(0), "a", NodeId(1)).unwrap();
        g.add_edge_str(NodeId(1), "b", NodeId(0)).unwrap();
        g
    }

    #[test]
    fn roundtrip_without_nulls() {
        let g = sample();
        let (_, inst) = encode_graph(&g);
        assert_eq!(inst.total_facts(), 4);
        let back = decode_graph(&inst, g.alphabet(), ValueNullStyle::SqlNull, 100).unwrap();
        assert!(g.is_subgraph_of(&back));
        assert!(back.is_subgraph_of(&g));
    }

    #[test]
    fn decode_value_nulls_sql() {
        let g = sample();
        let (gs, mut inst) = encode_graph(&g);
        // chase-style addition: new node ⊥0 with value null ⊥1
        inst.insert(gs.node_rel, vec![Term::Null(0), Term::Null(1)]);
        inst.insert(gs.edge_rels[0], vec![Term::Node(NodeId(0)), Term::Null(0)]);
        let back = decode_graph(&inst, g.alphabet(), ValueNullStyle::SqlNull, 100).unwrap();
        assert_eq!(back.node_count(), 3);
        let null_nodes: Vec<NodeId> = back.null_nodes().collect();
        assert_eq!(null_nodes.len(), 1);
        assert!(null_nodes[0].0 >= 100);
    }

    #[test]
    fn decode_value_nulls_fresh_are_distinct() {
        let g = sample();
        let (gs, mut inst) = encode_graph(&g);
        inst.insert(gs.node_rel, vec![Term::Null(0), Term::Null(2)]);
        inst.insert(gs.node_rel, vec![Term::Null(1), Term::Null(3)]);
        let back = decode_graph(&inst, g.alphabet(), ValueNullStyle::FreshConstants, 100).unwrap();
        assert_eq!(back.node_count(), 4);
        assert_eq!(back.null_nodes().count(), 0);
        // the two fresh values are distinct
        let vals: Vec<Value> = back
            .nodes()
            .filter(|(id, _)| id.0 >= 100)
            .map(|(_, v)| v.clone())
            .collect();
        assert_eq!(vals.len(), 2);
        assert_ne!(vals[0], vals[1]);
    }

    #[test]
    fn decode_rejects_key_violation() {
        let g = sample();
        let (gs, mut inst) = encode_graph(&g);
        inst.insert(
            gs.node_rel,
            vec![Term::Node(NodeId(0)), Term::Val(Value::int(99))],
        );
        let res = decode_graph(&inst, g.alphabet(), ValueNullStyle::SqlNull, 100);
        assert_eq!(res.err(), Some(NodeId(0)));
    }

    #[test]
    fn shared_value_null_decodes_consistently() {
        let g = sample();
        let (gs, mut inst) = encode_graph(&g);
        // two nodes share value null ⊥5
        inst.insert(gs.node_rel, vec![Term::Null(0), Term::Null(5)]);
        inst.insert(gs.node_rel, vec![Term::Null(1), Term::Null(5)]);
        let back = decode_graph(&inst, g.alphabet(), ValueNullStyle::FreshConstants, 100).unwrap();
        let vals: Vec<Value> = back
            .nodes()
            .filter(|(id, _)| id.0 >= 100)
            .map(|(_, v)| v.clone())
            .collect();
        assert_eq!(vals[0], vals[1]);
    }
}
