//! Relational instances over graph nodes, data values and marked nulls.

use crate::schema::{RelId, RelSchema};
use gde_datagraph::{FxHashSet, NodeId, Value};
use std::fmt;

/// A term in a relational fact.
///
/// The paper's relational representation of data graphs keeps node ids and
/// data values in disjoint domains (`N(x)` vs `D(x)` predicates); we bake
/// the distinction into the term type. Marked nulls `⊥ₖ` are the invented
/// values of the chase — plain constants whose only property is syntactic
/// identity.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub enum Term {
    /// A node id (element of the paper's `N`).
    Node(NodeId),
    /// A data value (element of `D`, or the SQL null).
    Val(Value),
    /// A marked null `⊥ₖ`.
    Null(u32),
}

impl Term {
    /// Is this a marked null?
    pub fn is_null(&self) -> bool {
        matches!(self, Term::Null(_))
    }

    /// The node id, if a node term.
    pub fn as_node(&self) -> Option<NodeId> {
        match self {
            Term::Node(n) => Some(*n),
            _ => None,
        }
    }

    /// The data value, if a value term.
    pub fn as_value(&self) -> Option<&Value> {
        match self {
            Term::Val(v) => Some(v),
            _ => None,
        }
    }
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Node(n) => write!(f, "{n}"),
            Term::Val(v) => write!(f, "{v}"),
            Term::Null(k) => write!(f, "⊥{k}"),
        }
    }
}

/// A relational instance: one set of facts per relation of a schema.
#[derive(Clone, Debug)]
pub struct Instance {
    schema: RelSchema,
    facts: Vec<FxHashSet<Box<[Term]>>>,
    next_null: u32,
}

impl Instance {
    /// An empty instance over a schema.
    pub fn new(schema: RelSchema) -> Instance {
        let n = schema.len();
        Instance {
            schema,
            facts: (0..n).map(|_| FxHashSet::default()).collect(),
            next_null: 0,
        }
    }

    /// The schema.
    pub fn schema(&self) -> &RelSchema {
        &self.schema
    }

    /// Insert a fact; returns true if new.
    ///
    /// # Panics
    /// Panics on arity mismatch or unknown relation.
    pub fn insert(&mut self, rel: RelId, tuple: impl Into<Vec<Term>>) -> bool {
        let tuple: Vec<Term> = tuple.into();
        assert_eq!(
            tuple.len(),
            self.schema.arity(rel),
            "arity mismatch for {}",
            self.schema.name(rel)
        );
        for t in &tuple {
            if let Term::Null(k) = t {
                self.next_null = self.next_null.max(k + 1);
            }
        }
        self.facts[rel.index()].insert(tuple.into_boxed_slice())
    }

    /// Allocate a fresh marked null.
    pub fn fresh_null(&mut self) -> Term {
        let t = Term::Null(self.next_null);
        self.next_null += 1;
        t
    }

    /// Membership test.
    pub fn contains(&self, rel: RelId, tuple: &[Term]) -> bool {
        self.facts[rel.index()].contains(tuple)
    }

    /// Facts of one relation.
    pub fn facts(&self, rel: RelId) -> impl Iterator<Item = &[Term]> + '_ {
        self.facts[rel.index()].iter().map(|t| t.as_ref())
    }

    /// Number of facts in one relation.
    pub fn fact_count(&self, rel: RelId) -> usize {
        self.facts[rel.index()].len()
    }

    /// Total number of facts.
    pub fn total_facts(&self) -> usize {
        self.facts.iter().map(|s| s.len()).sum()
    }

    /// Iterate over all `(relation, fact)` pairs.
    pub fn all_facts(&self) -> impl Iterator<Item = (RelId, &[Term])> + '_ {
        self.schema
            .relations()
            .flat_map(move |r| self.facts(r).map(move |t| (r, t)))
    }

    /// Replace every occurrence of `from` with `to` (used by EGD chasing).
    pub fn substitute(&mut self, from: &Term, to: &Term) {
        for rel in 0..self.facts.len() {
            let old = std::mem::take(&mut self.facts[rel]);
            for fact in old {
                if fact.iter().any(|t| t == from) {
                    let new: Vec<Term> = fact
                        .iter()
                        .map(|t| if t == from { to.clone() } else { t.clone() })
                        .collect();
                    self.facts[rel].insert(new.into_boxed_slice());
                } else {
                    self.facts[rel].insert(fact);
                }
            }
        }
    }

    /// All marked nulls occurring in the instance.
    pub fn nulls(&self) -> FxHashSet<u32> {
        let mut out = FxHashSet::default();
        for (_, fact) in self.all_facts() {
            for t in fact {
                if let Term::Null(k) = t {
                    out.insert(*k);
                }
            }
        }
        out
    }

    /// Is this instance a sub-instance of `other` (fact-wise, matching
    /// relations by name)?
    pub fn is_subinstance_of(&self, other: &Instance) -> bool {
        for rel in self.schema.relations() {
            let Some(orel) = other.schema.lookup(self.schema.name(rel)) else {
                if self.fact_count(rel) > 0 {
                    return false;
                }
                continue;
            };
            for fact in self.facts(rel) {
                if !other.contains(orel, fact) {
                    return false;
                }
            }
        }
        true
    }
}

impl fmt::Display for Instance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for rel in self.schema.relations() {
            let mut facts: Vec<&[Term]> = self.facts(rel).collect();
            facts.sort();
            for fact in facts {
                write!(f, "{}(", self.schema.name(rel))?;
                for (i, t) in fact.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{t}")?;
                }
                writeln!(f, ")")?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> (RelSchema, RelId, RelId) {
        let mut s = RelSchema::new();
        let e = s.relation("E", 2);
        let n = s.relation("N", 2);
        (s, e, n)
    }

    #[test]
    fn insert_and_query() {
        let (s, e, n) = schema();
        let mut i = Instance::new(s);
        assert!(i.insert(e, vec![Term::Node(NodeId(0)), Term::Node(NodeId(1))]));
        assert!(!i.insert(e, vec![Term::Node(NodeId(0)), Term::Node(NodeId(1))]));
        i.insert(n, vec![Term::Node(NodeId(0)), Term::Val(Value::int(5))]);
        assert_eq!(i.fact_count(e), 1);
        assert_eq!(i.total_facts(), 2);
        assert!(i.contains(e, &[Term::Node(NodeId(0)), Term::Node(NodeId(1))]));
        assert!(!i.contains(e, &[Term::Node(NodeId(1)), Term::Node(NodeId(0))]));
    }

    #[test]
    #[should_panic(expected = "arity mismatch")]
    fn arity_checked() {
        let (s, e, _) = schema();
        let mut i = Instance::new(s);
        i.insert(e, vec![Term::Node(NodeId(0))]);
    }

    #[test]
    fn fresh_nulls_distinct_and_tracked() {
        let (s, e, _) = schema();
        let mut i = Instance::new(s);
        let n1 = i.fresh_null();
        let n2 = i.fresh_null();
        assert_ne!(n1, n2);
        i.insert(e, vec![n1.clone(), n2.clone()]);
        assert_eq!(i.nulls().len(), 2);
        // inserting an explicit null bumps the counter
        i.insert(e, vec![Term::Null(100), Term::Null(100)]);
        assert_eq!(i.fresh_null(), Term::Null(101));
    }

    #[test]
    fn substitution() {
        let (s, e, _) = schema();
        let mut i = Instance::new(s);
        i.insert(e, vec![Term::Null(0), Term::Node(NodeId(1))]);
        i.insert(e, vec![Term::Null(0), Term::Null(0)]);
        i.substitute(&Term::Null(0), &Term::Node(NodeId(7)));
        assert!(i.contains(e, &[Term::Node(NodeId(7)), Term::Node(NodeId(1))]));
        assert!(i.contains(e, &[Term::Node(NodeId(7)), Term::Node(NodeId(7))]));
        assert_eq!(i.total_facts(), 2);
        assert!(i.nulls().is_empty());
    }

    #[test]
    fn substitution_can_merge_facts() {
        let (s, e, _) = schema();
        let mut i = Instance::new(s);
        i.insert(e, vec![Term::Null(0), Term::Node(NodeId(1))]);
        i.insert(e, vec![Term::Node(NodeId(2)), Term::Node(NodeId(1))]);
        i.substitute(&Term::Null(0), &Term::Node(NodeId(2)));
        assert_eq!(i.total_facts(), 1);
    }

    #[test]
    fn subinstance() {
        let (s, e, _) = schema();
        let mut a = Instance::new(s.clone());
        let mut b = Instance::new(s);
        a.insert(e, vec![Term::Node(NodeId(0)), Term::Node(NodeId(1))]);
        b.insert(e, vec![Term::Node(NodeId(0)), Term::Node(NodeId(1))]);
        b.insert(e, vec![Term::Node(NodeId(1)), Term::Node(NodeId(2))]);
        assert!(a.is_subinstance_of(&b));
        assert!(!b.is_subinstance_of(&a));
    }
}
