//! Deterministic finite automata: subset construction, boolean operations
//! and language tests.
//!
//! The paper's Theorem 1 error query contains the *complement* of a regular
//! shape language ("the path is **not** shaped as described"); complements
//! of regexes need determinization. This module provides the classical
//! pipeline — NFA → DFA ([`Dfa::from_nfa`]), completion, complement,
//! product intersection, emptiness and equivalence — and a conversion of a
//! DFA back to an evaluable [`Nfa`] so complemented languages can be used
//! as ordinary RPQs.
//!
//! Labels are dense (`0..n_labels`), matching an [`Alphabet`]; words using
//! labels outside that range are rejected by construction.

use crate::nfa::Nfa;
use crate::regex::Regex;
use gde_datagraph::{Alphabet, FxHashMap, Label};

/// A complete deterministic automaton over labels `0..n_labels`.
///
/// State `0` is the initial state. Transitions are total: every state has
/// exactly `n_labels` successors (a sink state makes the automaton
/// complete).
#[derive(Clone, Debug)]
pub struct Dfa {
    n_labels: usize,
    /// `next[s * n_labels + a]` = successor of state `s` on label `a`.
    next: Vec<u32>,
    accepting: Vec<bool>,
}

impl Dfa {
    /// Number of states.
    pub fn state_count(&self) -> usize {
        self.accepting.len()
    }

    /// Number of labels in the (dense) alphabet.
    pub fn n_labels(&self) -> usize {
        self.n_labels
    }

    /// Subset construction from an NFA, over a dense alphabet of
    /// `n_labels` labels.
    pub fn from_nfa(nfa: &Nfa, n_labels: usize) -> Dfa {
        let mut next: Vec<u32> = Vec::new();
        let mut accepting: Vec<bool> = Vec::new();
        let mut index: FxHashMap<Vec<u32>, u32> = FxHashMap::default();

        let init = nfa.initial_closure();
        index.insert(init.clone(), 0);
        let mut queue = vec![init];
        let mut head = 0usize;
        while head < queue.len() {
            let set = queue[head].clone();
            head += 1;
            accepting.push(set.iter().any(|&s| nfa.is_accepting(s)));
            for a in 0..n_labels {
                let succ = nfa.step_closure(&set, Label(a as u16));
                let id = match index.get(&succ) {
                    Some(&id) => id,
                    None => {
                        let id = index.len() as u32;
                        index.insert(succ.clone(), id);
                        queue.push(succ);
                        id
                    }
                };
                next.push(id);
            }
        }
        Dfa {
            n_labels,
            next,
            accepting,
        }
    }

    /// Build from a regex over an alphabet.
    pub fn from_regex(e: &Regex, alphabet: &Alphabet) -> Dfa {
        Dfa::from_nfa(&Nfa::from_regex(e), alphabet.len())
    }

    /// Does the automaton accept the word?
    pub fn accepts(&self, word: &[Label]) -> bool {
        let mut s = 0u32;
        for &l in word {
            if l.index() >= self.n_labels {
                return false;
            }
            s = self.next[s as usize * self.n_labels + l.index()];
        }
        self.accepting[s as usize]
    }

    /// The complement automaton (same states, flipped acceptance — valid
    /// because the automaton is complete).
    pub fn complement(&self) -> Dfa {
        Dfa {
            n_labels: self.n_labels,
            next: self.next.clone(),
            accepting: self.accepting.iter().map(|&b| !b).collect(),
        }
    }

    /// Product automaton; acceptance combined by `both` (true = AND for
    /// intersection, false = XOR for symmetric difference).
    fn product(&self, other: &Dfa, combine: impl Fn(bool, bool) -> bool) -> Dfa {
        assert_eq!(self.n_labels, other.n_labels, "alphabet mismatch");
        let n = self.n_labels;
        let mut index: FxHashMap<(u32, u32), u32> = FxHashMap::default();
        let mut next: Vec<u32> = Vec::new();
        let mut accepting: Vec<bool> = Vec::new();
        index.insert((0, 0), 0);
        let mut queue = vec![(0u32, 0u32)];
        let mut head = 0usize;
        while head < queue.len() {
            let (p, q) = queue[head];
            head += 1;
            accepting.push(combine(
                self.accepting[p as usize],
                other.accepting[q as usize],
            ));
            for a in 0..n {
                let pp = self.next[p as usize * n + a];
                let qq = other.next[q as usize * n + a];
                let id = match index.get(&(pp, qq)) {
                    Some(&id) => id,
                    None => {
                        let id = index.len() as u32;
                        index.insert((pp, qq), id);
                        queue.push((pp, qq));
                        id
                    }
                };
                next.push(id);
            }
        }
        Dfa {
            n_labels: n,
            next,
            accepting,
        }
    }

    /// Intersection.
    pub fn intersect(&self, other: &Dfa) -> Dfa {
        self.product(other, |a, b| a && b)
    }

    /// Is the language empty?
    pub fn is_empty(&self) -> bool {
        let mut seen = vec![false; self.state_count()];
        let mut stack = vec![0u32];
        seen[0] = true;
        while let Some(s) = stack.pop() {
            if self.accepting[s as usize] {
                return false;
            }
            for a in 0..self.n_labels {
                let t = self.next[s as usize * self.n_labels + a];
                if !seen[t as usize] {
                    seen[t as usize] = true;
                    stack.push(t);
                }
            }
        }
        true
    }

    /// Language equivalence: `L(self) = L(other)` (symmetric difference is
    /// empty).
    pub fn equivalent(&self, other: &Dfa) -> bool {
        self.product(other, |a, b| a != b).is_empty()
    }

    /// Is `L(self) ⊆ L(other)`?
    pub fn subset_of(&self, other: &Dfa) -> bool {
        self.product(other, |a, b| a && !b).is_empty()
    }

    /// Minimize by Moore partition refinement (after trimming to reachable
    /// states). The result is the canonical minimal complete DFA.
    pub fn minimize(&self) -> Dfa {
        let n = self.n_labels;
        // reachable states
        let mut reach: Vec<u32> = Vec::new();
        {
            let mut seen = vec![false; self.state_count()];
            let mut stack = vec![0u32];
            seen[0] = true;
            while let Some(s) = stack.pop() {
                reach.push(s);
                for a in 0..n {
                    let t = self.next[s as usize * n + a];
                    if !seen[t as usize] {
                        seen[t as usize] = true;
                        stack.push(t);
                    }
                }
            }
            reach.sort_unstable();
        }
        // initial partition: accepting / rejecting
        let mut class: Vec<u32> = vec![u32::MAX; self.state_count()];
        for &s in &reach {
            class[s as usize] = self.accepting[s as usize] as u32;
        }
        loop {
            // signature: (class, classes of successors)
            let mut sig_index: FxHashMap<Vec<u32>, u32> = FxHashMap::default();
            let mut next_class: Vec<u32> = vec![u32::MAX; self.state_count()];
            for &s in &reach {
                let mut sig = Vec::with_capacity(n + 1);
                sig.push(class[s as usize]);
                for a in 0..n {
                    sig.push(class[self.next[s as usize * n + a] as usize]);
                }
                let id = match sig_index.get(&sig) {
                    Some(&id) => id,
                    None => {
                        let id = sig_index.len() as u32;
                        sig_index.insert(sig, id);
                        id
                    }
                };
                next_class[s as usize] = id;
            }
            if next_class == class {
                break;
            }
            class = next_class;
        }
        // rebuild with class of the initial state renumbered to 0
        let n_classes = class
            .iter()
            .filter(|&&c| c != u32::MAX)
            .max()
            .map_or(0, |&m| m as usize + 1);
        let init_class = class[0];
        let rename = |c: u32| -> u32 {
            if c == init_class {
                0
            } else if c == 0 {
                init_class
            } else {
                c
            }
        };
        let mut next = vec![0u32; n_classes * n];
        let mut accepting = vec![false; n_classes];
        for &s in &reach {
            let c = rename(class[s as usize]) as usize;
            accepting[c] = self.accepting[s as usize];
            for a in 0..n {
                next[c * n + a] = rename(class[self.next[s as usize * n + a] as usize]);
            }
        }
        Dfa {
            n_labels: n,
            next,
            accepting,
        }
    }

    /// Some accepted word (shortest), if the language is nonempty.
    pub fn sample_word(&self) -> Option<Vec<Label>> {
        let mut prev: Vec<Option<(u32, Label)>> = vec![None; self.state_count()];
        let mut seen = vec![false; self.state_count()];
        let mut queue = std::collections::VecDeque::new();
        queue.push_back(0u32);
        seen[0] = true;
        let mut goal = None;
        while let Some(s) = queue.pop_front() {
            if self.accepting[s as usize] {
                goal = Some(s);
                break;
            }
            for a in 0..self.n_labels {
                let t = self.next[s as usize * self.n_labels + a];
                if !seen[t as usize] {
                    seen[t as usize] = true;
                    prev[t as usize] = Some((s, Label(a as u16)));
                    queue.push_back(t);
                }
            }
        }
        let mut cur = goal?;
        let mut word = Vec::new();
        while let Some((p, l)) = prev[cur as usize] {
            word.push(l);
            cur = p;
        }
        word.reverse();
        Some(word)
    }

    /// View the DFA as an [`Nfa`] (for graph evaluation of complemented
    /// languages as ordinary RPQs).
    pub fn to_nfa(&self) -> Nfa {
        let mut transitions: Vec<Vec<(Label, u32)>> = vec![Vec::new(); self.state_count()];
        for (s, row) in transitions.iter_mut().enumerate() {
            for a in 0..self.n_labels {
                row.push((Label(a as u16), self.next[s * self.n_labels + a]));
            }
        }
        Nfa::from_parts(0, self.accepting.clone(), transitions)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_regex;

    fn dfa(src: &str) -> (Dfa, Alphabet) {
        let mut al = Alphabet::from_labels(["a", "b"]);
        let e = parse_regex(src, &mut al).unwrap();
        assert_eq!(al.len(), 2, "tests use the fixed 2-letter alphabet");
        (Dfa::from_regex(&e, &al), al)
    }

    fn w(al: &Alphabet, s: &str) -> Vec<Label> {
        s.chars()
            .map(|c| al.label(&c.to_string()).unwrap())
            .collect()
    }

    #[test]
    fn determinization_preserves_language() {
        let (d, al) = dfa("(a|b)* a b");
        for (word, expect) in [("ab", true), ("aab", true), ("ba", false), ("abb", false)] {
            assert_eq!(d.accepts(&w(&al, word)), expect, "{word}");
        }
    }

    #[test]
    fn complement_flips_membership() {
        let (d, al) = dfa("a b*");
        let c = d.complement();
        for word in ["", "a", "ab", "abb", "b", "ba", "aa"] {
            assert_ne!(d.accepts(&w(&al, word)), c.accepts(&w(&al, word)), "{word}");
        }
    }

    #[test]
    fn intersection() {
        let (d1, al) = dfa("a (a|b)*"); // starts with a
        let (d2, _) = dfa("(a|b)* b"); // ends with b
        let i = d1.intersect(&d2);
        assert!(i.accepts(&w(&al, "ab")));
        assert!(i.accepts(&w(&al, "abab")));
        assert!(!i.accepts(&w(&al, "aba")));
        assert!(!i.accepts(&w(&al, "bb")));
    }

    #[test]
    fn emptiness_and_sampling() {
        let (d1, _) = dfa("a b");
        let (d2, _) = dfa("b a");
        assert!(d1.intersect(&d2).is_empty());
        assert!(!d1.is_empty());
        let (d3, al) = dfa("(a|b)* a");
        let word = d3.sample_word().unwrap();
        assert!(d3.accepts(&word));
        assert_eq!(word, w(&al, "a")); // shortest
    }

    #[test]
    fn equivalence_laws() {
        // double complement
        let (d, _) = dfa("(a b)+");
        assert!(d.equivalent(&d.complement().complement()));
        // e* ≡ ε | e+
        let (s, _) = dfa("(a b)*");
        let (u, _) = dfa("eps | (a b)+");
        assert!(s.equivalent(&u));
        assert!(!s.equivalent(&d));
        // subset: e+ ⊆ e*
        assert!(d.subset_of(&s));
        assert!(!s.subset_of(&d));
    }

    #[test]
    fn minimization_preserves_language_and_shrinks() {
        for src in [
            "(a|b)* a b",
            "a b*",
            "(a b)+ | (a b)*",
            "a a | a a a | a a a a",
        ] {
            let (d, _) = dfa(src);
            let m = d.minimize();
            assert!(m.state_count() <= d.state_count(), "{src}");
            assert!(m.equivalent(&d), "{src}");
        }
        // equivalent regexes minimize to the same number of states
        let (d1, _) = dfa("(a b)*");
        let (d2, _) = dfa("eps | a b ((a b)*)");
        assert_eq!(d1.minimize().state_count(), d2.minimize().state_count());
    }

    #[test]
    fn minimal_dfa_known_size() {
        // L = words over {a,b} ending in "ab": canonical minimal DFA has 3
        // states (complete, no sink needed — every state is live).
        let (d, _) = dfa("(a|b)* a b");
        assert_eq!(d.minimize().state_count(), 3);
        // empty language: one sink state
        let (d1, _) = dfa("a");
        let (d2, _) = dfa("b");
        assert_eq!(d1.intersect(&d2).minimize().state_count(), 1);
    }

    #[test]
    fn complement_evaluates_on_graphs() {
        use gde_datagraph::{DataGraph, NodeId, Value};
        // graph: 0 -a-> 1 -b-> 2 and 0 -b-> 2
        let mut g = DataGraph::new();
        for i in 0..3 {
            g.add_node(NodeId(i), Value::int(0)).unwrap();
        }
        g.add_edge_str(NodeId(0), "a", NodeId(1)).unwrap();
        g.add_edge_str(NodeId(1), "b", NodeId(2)).unwrap();
        g.add_edge_str(NodeId(0), "b", NodeId(2)).unwrap();
        let mut al = g.alphabet().clone();
        let e = parse_regex("a b", &mut al).unwrap();
        let not_ab = Dfa::from_regex(&e, &al).complement().to_nfa();
        let pairs = not_ab.eval_pairs(&g);
        // 0→2 via "b" (∉ {ab}) qualifies; ε-paths qualify everywhere
        assert!(pairs.contains(&(NodeId(0), NodeId(2))));
        assert!(pairs.contains(&(NodeId(0), NodeId(0))));
        // 0→2 via a b also exists but the complement only needs SOME path;
        // the pair stays because of the b-shortcut.
    }
}
