//! # gde-automata
//!
//! Classical and data-aware automata substrate for the PODS'17 data-graph
//! schema-mapping framework:
//!
//! * [`Regex`] — regular expressions over an edge alphabet, the language of
//!   the paper's RPQs (§2), with a parser ([`parser::parse_regex`]) and a
//!   printer;
//! * [`Nfa`] — Thompson construction and product-BFS evaluation over data
//!   graphs, i.e. the classical RPQ semantics
//!   `e(G) = {(v,v') | ∃π: v →π v', λ(π) ∈ L(e)}`;
//! * [`register`] — register automata over data paths (§3, after \[25,31\]):
//!   the operational model underlying regular expressions with memory,
//!   including configuration-BFS evaluation on graphs and a symbolic
//!   (partition-based) nonemptiness check with witness extraction.

#![deny(unsafe_code)]

pub mod dfa;
pub mod nfa;
pub mod parser;
pub mod regex;
pub mod register;

/// Per-start row evaluation shared by the NFA and register-automaton
/// row-restricted entry points: run `reach` (the automaton's
/// eval-from-one-start) from every start row in `rows`, collecting the
/// reached rows into a relation. The start set is what restricts the
/// work; the walk itself crosses row-range boundaries freely.
pub(crate) fn eval_rows_by(
    s: &gde_datagraph::GraphSnapshot,
    rows: std::ops::Range<usize>,
    reach: impl Fn(gde_datagraph::NodeId) -> Vec<gde_datagraph::NodeId>,
) -> gde_datagraph::Relation {
    let n = s.n();
    let mut b = gde_datagraph::RelationBuilder::new(n);
    for u in rows.start..rows.end.min(n) {
        for v in reach(s.id_at(u as u32)) {
            b.push(u, s.idx(v).expect("reached node is in snapshot") as usize);
        }
    }
    b.build()
}

/// Boolean projection of [`eval_rows_by`]: does any start row in `rows`
/// reach an answer? Early-exits on the first matching start row.
pub(crate) fn holds_in_rows_by(
    s: &gde_datagraph::GraphSnapshot,
    rows: std::ops::Range<usize>,
    reach: impl Fn(gde_datagraph::NodeId) -> Vec<gde_datagraph::NodeId>,
) -> bool {
    (rows.start..rows.end.min(s.n())).any(|u| !reach(s.id_at(u as u32)).is_empty())
}

pub use dfa::Dfa;
pub use nfa::Nfa;
pub use parser::{parse_regex, ParseError};
pub use regex::Regex;
pub use register::{Cond, Reg, RegisterAutomaton};
