//! # gde-automata
//!
//! Classical and data-aware automata substrate for the PODS'17 data-graph
//! schema-mapping framework:
//!
//! * [`Regex`] — regular expressions over an edge alphabet, the language of
//!   the paper's RPQs (§2), with a parser ([`parser::parse_regex`]) and a
//!   printer;
//! * [`Nfa`] — Thompson construction and product-BFS evaluation over data
//!   graphs, i.e. the classical RPQ semantics
//!   `e(G) = {(v,v') | ∃π: v →π v', λ(π) ∈ L(e)}`;
//! * [`register`] — register automata over data paths (§3, after \[25,31\]):
//!   the operational model underlying regular expressions with memory,
//!   including configuration-BFS evaluation on graphs and a symbolic
//!   (partition-based) nonemptiness check with witness extraction.

pub mod dfa;
pub mod nfa;
pub mod parser;
pub mod regex;
pub mod register;

pub use dfa::Dfa;
pub use nfa::Nfa;
pub use parser::{parse_regex, ParseError};
pub use regex::Regex;
pub use register::{Cond, Reg, RegisterAutomaton};
