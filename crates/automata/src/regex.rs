//! Regular expressions over an edge alphabet: the paper's RPQs (§2).
//!
//! An RPQ *is* a regular expression `e` over `Σ`; on a (data) graph it
//! returns all pairs of nodes connected by a path whose label is in `L(e)`.
//! Special cases singled out by the paper: *word RPQs* (`e = w ∈ Σ*`),
//! *atomic RPQs* (`e = a ∈ Σ`) and the *reachability RPQ* (`e = Σ*`).

use gde_datagraph::{Alphabet, Label};
use std::fmt::Write as _;

/// A regular expression over edge labels.
///
/// `Concat`/`Union` are n-ary for convenience; `Star` is kept as a first
/// class constructor although the paper treats `Σ* = ε + Σ⁺` as sugar.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum Regex {
    /// The empty language `∅`.
    Empty,
    /// The empty word `ε`.
    Epsilon,
    /// A single letter `a ∈ Σ`.
    Atom(Label),
    /// Concatenation `e₁ · e₂ · …` (empty sequence = ε).
    Concat(Vec<Regex>),
    /// Union `e₁ + e₂ + …` (empty sequence = ∅).
    Union(Vec<Regex>),
    /// One-or-more repetition `e⁺`.
    Plus(Box<Regex>),
    /// Zero-or-more repetition `e*`.
    Star(Box<Regex>),
}

impl Regex {
    /// The word RPQ `a₁…aₙ` (ε when the word is empty).
    pub fn word(w: &[Label]) -> Regex {
        match w.len() {
            0 => Regex::Epsilon,
            1 => Regex::Atom(w[0]),
            _ => Regex::Concat(w.iter().map(|&l| Regex::Atom(l)).collect()),
        }
    }

    /// The union `a₁ + … + aₙ` of a set of letters.
    pub fn any_of(labels: impl IntoIterator<Item = Label>) -> Regex {
        let atoms: Vec<Regex> = labels.into_iter().map(Regex::Atom).collect();
        match atoms.len() {
            0 => Regex::Empty,
            1 => atoms.into_iter().next().unwrap(),
            _ => Regex::Union(atoms),
        }
    }

    /// The reachability RPQ `Σ*` for a whole alphabet.
    pub fn reachability(alphabet: &Alphabet) -> Regex {
        Regex::Star(Box::new(Regex::any_of(alphabet.labels())))
    }

    /// If this expression is a single word `w ∈ Σ*`, return it.
    ///
    /// This is the test used to classify mappings as *relational*
    /// (Definition 3 of the paper: every target query is a word RPQ).
    pub fn as_word(&self) -> Option<Vec<Label>> {
        fn go(e: &Regex, out: &mut Vec<Label>) -> bool {
            match e {
                Regex::Epsilon => true,
                Regex::Atom(l) => {
                    out.push(*l);
                    true
                }
                Regex::Concat(es) => es.iter().all(|e| go(e, out)),
                _ => false,
            }
        }
        let mut w = Vec::new();
        if go(self, &mut w) {
            Some(w)
        } else {
            None
        }
    }

    /// If this expression is a finite union of words `w₁ + … + wₘ`, return
    /// them. (Theorem 2's proof allows such right-hand sides in relational
    /// mappings.)
    pub fn as_union_of_words(&self) -> Option<Vec<Vec<Label>>> {
        match self {
            Regex::Union(es) => {
                let mut out = Vec::with_capacity(es.len());
                for e in es {
                    out.push(e.as_word()?);
                }
                Some(out)
            }
            e => Some(vec![e.as_word()?]),
        }
    }

    /// Is this exactly an atomic RPQ (a single letter)? Used by the LAV /
    /// GAV classification of mappings (§4).
    pub fn as_atom(&self) -> Option<Label> {
        match self {
            Regex::Atom(l) => Some(*l),
            Regex::Concat(es) | Regex::Union(es) if es.len() == 1 => es[0].as_atom(),
            _ => None,
        }
    }

    /// Is this the reachability RPQ `Σ*` over the given alphabet (i.e. the
    /// star of a union containing every letter)? Used to classify
    /// relational/reachability mappings (§5).
    pub fn is_reachability(&self, alphabet: &Alphabet) -> bool {
        let inner = match self {
            Regex::Star(e) => e,
            _ => return false,
        };
        let mut seen = vec![false; alphabet.len()];
        fn collect(e: &Regex, seen: &mut [bool]) -> bool {
            match e {
                Regex::Atom(l) if l.index() < seen.len() => {
                    seen[l.index()] = true;
                    true
                }
                Regex::Union(es) => es.iter().all(|e| collect(e, seen)),
                _ => false,
            }
        }
        collect(inner, &mut seen) && seen.iter().all(|&b| b)
    }

    /// Every label mentioned in the expression, sorted and deduplicated.
    ///
    /// This over-approximates the labels of `L(e)` (an `∅`-annihilated
    /// branch still contributes its letters), which is the safe direction
    /// for the static analyses built on it: a query whose mentioned labels
    /// are disjoint from a mapping's produced labels is certainly empty.
    pub fn labels(&self) -> Vec<Label> {
        fn go(e: &Regex, out: &mut Vec<Label>) {
            match e {
                Regex::Empty | Regex::Epsilon => {}
                Regex::Atom(l) => out.push(*l),
                Regex::Concat(es) | Regex::Union(es) => {
                    for e in es {
                        go(e, out);
                    }
                }
                Regex::Plus(e) | Regex::Star(e) => go(e, out),
            }
        }
        let mut out = Vec::new();
        go(self, &mut out);
        out.sort();
        out.dedup();
        out
    }

    /// Maximum nesting depth of iteration (`⁺`/`*`) constructors: `a b` is
    /// 0, `a*` is 1, `(a+ b)*` is 2. A proxy for closure cost — each level
    /// multiplies the reachable-pair fan-out a relation-algebra or
    /// product-BFS evaluation explores — used by the cardinality estimator.
    pub fn star_depth(&self) -> usize {
        match self {
            Regex::Empty | Regex::Epsilon | Regex::Atom(_) => 0,
            Regex::Concat(es) | Regex::Union(es) => {
                es.iter().map(Regex::star_depth).max().unwrap_or(0)
            }
            Regex::Plus(e) | Regex::Star(e) => 1 + e.star_depth(),
        }
    }

    /// Does ε belong to `L(e)`?
    pub fn nullable(&self) -> bool {
        match self {
            Regex::Empty | Regex::Atom(_) | Regex::Plus(_) => match self {
                Regex::Plus(e) => e.nullable(),
                _ => false,
            },
            Regex::Epsilon | Regex::Star(_) => true,
            Regex::Concat(es) => es.iter().all(Regex::nullable),
            Regex::Union(es) => es.iter().any(Regex::nullable),
        }
    }

    /// Length of the shortest word in `L(e)`, or `None` if the language is
    /// empty.
    pub fn min_word_len(&self) -> Option<usize> {
        match self {
            Regex::Empty => None,
            Regex::Epsilon => Some(0),
            Regex::Atom(_) => Some(1),
            Regex::Concat(es) => {
                let mut total = 0usize;
                for e in es {
                    total += e.min_word_len()?;
                }
                Some(total)
            }
            Regex::Union(es) => es.iter().filter_map(Regex::min_word_len).min(),
            Regex::Plus(e) => e.min_word_len(),
            Regex::Star(_) => Some(0),
        }
    }

    /// Length of the longest word in `L(e)`, `None` meaning unbounded, when
    /// the language is nonempty; `Some(0)` for `∅` by convention. Used by
    /// the mapping-cutting argument of Proposition 5.
    pub fn max_word_len(&self) -> Option<usize> {
        match self {
            Regex::Empty | Regex::Epsilon => Some(0),
            Regex::Atom(_) => Some(1),
            Regex::Concat(es) => {
                let mut total = 0usize;
                for e in es {
                    total += e.max_word_len()?;
                }
                Some(total)
            }
            Regex::Union(es) => {
                let mut best = 0usize;
                for e in es {
                    best = best.max(e.max_word_len()?);
                }
                Some(best)
            }
            Regex::Plus(e) | Regex::Star(e) => {
                // unbounded unless the body only matches ε
                match e.max_word_len() {
                    Some(0) => Some(0),
                    _ => None,
                }
            }
        }
    }

    /// Pretty-print against an alphabet (labels are printed by name).
    /// The output parses back to the same regex: label names the grammar
    /// cannot read bare (`likes/src`, `@name`, the `eps`/`empty`
    /// keywords) come out in the parser's `'…'` quoted form.
    pub fn display(&self, alphabet: &Alphabet) -> String {
        let mut s = String::new();
        self.fmt_prec(alphabet, 0, &mut s);
        s
    }

    fn fmt_prec(&self, alphabet: &Alphabet, prec: u8, out: &mut String) {
        // precedence: union=0, concat=1, postfix=2
        match self {
            Regex::Empty => out.push('∅'),
            Regex::Epsilon => out.push('ε'),
            Regex::Atom(l) => {
                let name = alphabet.name(*l);
                if needs_quoting(name) {
                    let _ = write!(out, "'{name}'");
                } else {
                    let _ = write!(out, "{name}");
                }
            }
            Regex::Concat(es) if es.len() == 1 => es[0].fmt_prec(alphabet, prec, out),
            Regex::Concat(es) => {
                let wrap = prec > 1;
                if wrap {
                    out.push('(');
                }
                if es.is_empty() {
                    out.push('ε');
                }
                for (i, e) in es.iter().enumerate() {
                    if i > 0 {
                        out.push(' ');
                    }
                    e.fmt_prec(alphabet, 1, out);
                }
                if wrap {
                    out.push(')');
                }
            }
            Regex::Union(es) if es.len() == 1 => es[0].fmt_prec(alphabet, prec, out),
            Regex::Union(es) => {
                let wrap = prec > 0;
                if wrap {
                    out.push('(');
                }
                if es.is_empty() {
                    out.push('∅');
                }
                for (i, e) in es.iter().enumerate() {
                    if i > 0 {
                        out.push_str(" | ");
                    }
                    e.fmt_prec(alphabet, 0, out);
                }
                if wrap {
                    out.push(')');
                }
            }
            Regex::Plus(e) => {
                e.fmt_prec(alphabet, 2, out);
                out.push('+');
            }
            Regex::Star(e) => {
                e.fmt_prec(alphabet, 2, out);
                out.push('*');
            }
        }
    }
}

/// Does this label name need the parser's `'…'` quoted form? Bare
/// identifiers (alphabetic/`_` start, alphanumeric/`_` rest) other than
/// the `eps`/`empty` keywords parse unquoted, as do the grammar's
/// single-character symbolic labels (`#`, `↔`, `@`, …).
fn needs_quoting(name: &str) -> bool {
    if name == "eps" || name == "empty" {
        return true;
    }
    let mut chars = name.chars();
    let first = match chars.next() {
        Some(c) => c,
        None => return true,
    };
    if (first.is_alphabetic() || first == '_')
        && chars.clone().all(|c| c.is_alphanumeric() || c == '_')
    {
        return false;
    }
    let symbolic = matches!(
        first,
        '#' | '↔' | '←' | '→' | '⇠' | '⇢' | '$' | '@' | '%' | '^' | '&' | '!' | '~'
    ) && chars.next().is_none();
    !symbolic
}

#[cfg(test)]
mod tests {
    use super::*;
    use gde_datagraph::Alphabet;

    fn ab() -> (Alphabet, Label, Label) {
        let a = Alphabet::from_labels(["a", "b"]);
        let la = a.label("a").unwrap();
        let lb = a.label("b").unwrap();
        (a, la, lb)
    }

    #[test]
    fn word_helpers() {
        let (_, a, b) = ab();
        let w = Regex::word(&[a, b, a]);
        assert_eq!(w.as_word(), Some(vec![a, b, a]));
        assert_eq!(Regex::word(&[]).as_word(), Some(vec![]));
        assert_eq!(Regex::word(&[a]).as_atom(), Some(a));
        assert!(Regex::Plus(Box::new(Regex::Atom(a))).as_word().is_none());
    }

    #[test]
    fn union_of_words() {
        let (_, a, b) = ab();
        let e = Regex::Union(vec![Regex::word(&[a, b]), Regex::word(&[b])]);
        assert_eq!(e.as_union_of_words(), Some(vec![vec![a, b], vec![b]]));
        let bad = Regex::Union(vec![
            Regex::word(&[a]),
            Regex::Star(Box::new(Regex::Atom(b))),
        ]);
        assert!(bad.as_union_of_words().is_none());
        // single word counts as a 1-union
        assert_eq!(Regex::word(&[a]).as_union_of_words(), Some(vec![vec![a]]));
    }

    #[test]
    fn reachability_detection() {
        let (al, a, b) = ab();
        let r = Regex::reachability(&al);
        assert!(r.is_reachability(&al));
        let partial = Regex::Star(Box::new(Regex::Atom(a)));
        assert!(!partial.is_reachability(&al));
        let manual = Regex::Star(Box::new(Regex::Union(vec![Regex::Atom(a), Regex::Atom(b)])));
        assert!(manual.is_reachability(&al));
        assert!(!Regex::Plus(Box::new(Regex::Atom(a))).is_reachability(&al));
    }

    #[test]
    fn nullable() {
        let (_, a, _) = ab();
        assert!(Regex::Epsilon.nullable());
        assert!(!Regex::Atom(a).nullable());
        assert!(Regex::Star(Box::new(Regex::Atom(a))).nullable());
        assert!(!Regex::Plus(Box::new(Regex::Atom(a))).nullable());
        assert!(
            Regex::Concat(vec![Regex::Epsilon, Regex::Star(Box::new(Regex::Atom(a)))]).nullable()
        );
        assert!(Regex::Union(vec![Regex::Atom(a), Regex::Epsilon]).nullable());
        assert!(!Regex::Empty.nullable());
    }

    #[test]
    fn label_collection_and_star_depth() {
        let (_, a, b) = ab();
        let e = Regex::Concat(vec![
            Regex::Atom(b),
            Regex::Star(Box::new(Regex::Union(vec![
                Regex::Atom(a),
                Regex::Plus(Box::new(Regex::Atom(b))),
            ]))),
        ]);
        assert_eq!(e.labels(), vec![a, b]);
        assert_eq!(e.star_depth(), 2);
        assert_eq!(Regex::Epsilon.labels(), vec![]);
        assert_eq!(Regex::word(&[a, b]).star_depth(), 0);
        // ∅-annihilated branches still count (over-approximation)
        let dead = Regex::Concat(vec![Regex::Empty, Regex::Atom(a)]);
        assert_eq!(dead.labels(), vec![a]);
    }

    #[test]
    fn word_length_bounds() {
        let (_, a, b) = ab();
        let e = Regex::Union(vec![Regex::word(&[a, b]), Regex::word(&[b])]);
        assert_eq!(e.min_word_len(), Some(1));
        assert_eq!(e.max_word_len(), Some(2));
        let star = Regex::Star(Box::new(Regex::Atom(a)));
        assert_eq!(star.min_word_len(), Some(0));
        assert_eq!(star.max_word_len(), None);
        assert_eq!(Regex::Empty.min_word_len(), None);
        // Star of ε stays bounded
        assert_eq!(
            Regex::Star(Box::new(Regex::Epsilon)).max_word_len(),
            Some(0)
        );
    }

    #[test]
    fn display_round() {
        let (al, a, b) = ab();
        let e = Regex::Concat(vec![
            Regex::Union(vec![Regex::Atom(a), Regex::Atom(b)]),
            Regex::Plus(Box::new(Regex::Atom(a))),
        ]);
        assert_eq!(e.display(&al), "(a | b) a+");
    }

    #[test]
    fn display_quotes_non_identifier_labels() {
        let mut al = Alphabet::new();
        let slash = al.intern("likes/src");
        let at = al.intern("@name");
        let hash = al.intern("#");
        let kw = al.intern("eps");
        let e = Regex::Concat(vec![
            Regex::Atom(slash),
            Regex::Atom(at),
            Regex::Atom(hash),
            Regex::Atom(kw),
        ]);
        let printed = e.display(&al);
        assert_eq!(printed, "'likes/src' '@name' # 'eps'");
        // and the printed form parses back to the same regex
        let mut al2 = al.clone();
        let back = crate::parse_regex(&printed, &mut al2).unwrap();
        assert_eq!(back.display(&al2), printed);
        assert_eq!(back, e);
    }
}
