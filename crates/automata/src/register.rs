//! Register automata over data paths (§3 of the paper, after \[25, 31\]).
//!
//! A register automaton reads a data path `d₀a₁d₁…aₙdₙ`: it starts on the
//! value `d₀` and then consumes `(label, value)` steps. Transitions are of
//! two kinds:
//!
//! * **ε-transitions** carrying an action: *store* the current data value in
//!   a set of registers, or *check* a [`Cond`] against the current value;
//! * **letter transitions** consuming one `(a, d)` step.
//!
//! This is exactly the machinery needed to implement regular expressions
//! with memory (compiled in `gde-dataquery`); it also provides the symbolic
//! nonemptiness check (configurations abstract register contents by an
//! equality partition) that witnesses the PSPACE upper bound of \[31\].
//!
//! Value comparisons follow §7's SQL-null rule throughout: no comparison
//! involving [`Value::Null`] is true. On null-free graphs (the §3 semantics)
//! this coincides with plain equality, so one implementation serves both.

use gde_datagraph::{
    DataGraph, DataPath, FxHashMap, FxHashSet, GraphSnapshot, Label, NodeId, Relation, Value,
};
use std::collections::VecDeque;

/// A register index.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub struct Reg(pub u8);

/// A condition `c := x= | x≠ | c∧c | c∨c` on registers vs the current value.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum Cond {
    /// Always true (used for unconditioned checks).
    True,
    /// `x=`: the register equals the current data value (both non-null).
    Eq(Reg),
    /// `x≠`: the register differs from the current value (both non-null,
    /// register defined).
    Neq(Reg),
    /// Conjunction.
    And(Box<Cond>, Box<Cond>),
    /// Disjunction.
    Or(Box<Cond>, Box<Cond>),
}

impl Cond {
    /// Conjunction builder.
    pub fn and(a: Cond, b: Cond) -> Cond {
        Cond::And(Box::new(a), Box::new(b))
    }

    /// Disjunction builder.
    pub fn or(a: Cond, b: Cond) -> Cond {
        Cond::Or(Box::new(a), Box::new(b))
    }

    /// Negation: conditions are closed under negation by pushing `¬` to the
    /// leaves and swapping `x=`/`x≠` (§3 of the paper).
    ///
    /// Note this De Morgan dual is the *syntactic* negation of the paper;
    /// under SQL-null semantics `x=` and `x≠` are both false on nulls, so
    /// `c` and `c.negate()` may both be false — exactly SQL's behaviour.
    pub fn negate(&self) -> Cond {
        match self {
            Cond::True => Cond::Or(Box::new(Cond::True), Box::new(Cond::True)), // placeholder: ¬true unused
            Cond::Eq(r) => Cond::Neq(*r),
            Cond::Neq(r) => Cond::Eq(*r),
            Cond::And(a, b) => Cond::or(a.negate(), b.negate()),
            Cond::Or(a, b) => Cond::and(a.negate(), b.negate()),
        }
    }

    /// Registers mentioned by the condition.
    pub fn regs(&self, out: &mut Vec<Reg>) {
        match self {
            Cond::True => {}
            Cond::Eq(r) | Cond::Neq(r) => out.push(*r),
            Cond::And(a, b) | Cond::Or(a, b) => {
                a.regs(out);
                b.regs(out);
            }
        }
    }

    /// Evaluate against concrete values. `regs[i] = None` means register `i`
    /// is undefined (`⊥`); comparisons with undefined registers are false,
    /// as are comparisons involving nulls (§7).
    pub fn eval(&self, regs: &[Option<&Value>], current: &Value) -> bool {
        match self {
            Cond::True => true,
            Cond::Eq(r) => regs[r.0 as usize].is_some_and(|v| v.sql_eq(current)),
            Cond::Neq(r) => regs[r.0 as usize].is_some_and(|v| v.sql_ne(current)),
            Cond::And(a, b) => a.eval(regs, current) && b.eval(regs, current),
            Cond::Or(a, b) => a.eval(regs, current) || b.eval(regs, current),
        }
    }

    /// SQL three-valued evaluation (Remark 2 of the paper): comparisons
    /// with the null value are *unknown* (`None`), and unknown propagates
    /// through `∧`/`∨` by the usual Kleene rules. The paper's two-valued
    /// semantics ([`Cond::eval`]) and this one agree on *true*:
    /// `eval(c) == true  ⟺  eval_sql3(c) == Some(true)` — which is why the
    /// simpler two-valued evaluation loses nothing for data RPQs.
    pub fn eval_sql3(&self, regs: &[Option<&Value>], current: &Value) -> Option<bool> {
        match self {
            Cond::True => Some(true),
            Cond::Eq(r) => match regs[r.0 as usize] {
                None => Some(false), // undefined register: plain false, not unknown
                Some(v) if v.is_null() || current.is_null() => None,
                Some(v) => Some(v == current),
            },
            Cond::Neq(r) => match regs[r.0 as usize] {
                None => Some(false),
                Some(v) if v.is_null() || current.is_null() => None,
                Some(v) => Some(v != current),
            },
            Cond::And(a, b) => match (a.eval_sql3(regs, current), b.eval_sql3(regs, current)) {
                (Some(false), _) | (_, Some(false)) => Some(false),
                (Some(true), Some(true)) => Some(true),
                _ => None,
            },
            Cond::Or(a, b) => match (a.eval_sql3(regs, current), b.eval_sql3(regs, current)) {
                (Some(true), _) | (_, Some(true)) => Some(true),
                (Some(false), Some(false)) => Some(false),
                _ => None,
            },
        }
    }

    /// Evaluate against interned value ids (a [`gde_datagraph::GraphSnapshot`]
    /// vid table): `regs` hold vids or `undef`, `cur` is the current vid,
    /// and `null_vid` is the vid shared by SQL-null values (comparisons
    /// touching it are false, as in [`Cond::eval`]). Equality collapses to
    /// integer comparison because SQL-equal values share a vid.
    pub fn eval_vids(&self, regs: &[u32], cur: u32, null_vid: Option<u32>, undef: u32) -> bool {
        let ok = |v: u32| v != undef && Some(v) != null_vid;
        match self {
            Cond::True => true,
            Cond::Eq(r) => {
                let v = regs[r.0 as usize];
                ok(v) && Some(cur) != null_vid && v == cur
            }
            Cond::Neq(r) => {
                let v = regs[r.0 as usize];
                ok(v) && Some(cur) != null_vid && v != cur
            }
            Cond::And(a, b) => {
                a.eval_vids(regs, cur, null_vid, undef) && b.eval_vids(regs, cur, null_vid, undef)
            }
            Cond::Or(a, b) => {
                a.eval_vids(regs, cur, null_vid, undef) || b.eval_vids(regs, cur, null_vid, undef)
            }
        }
    }

    /// Symbolic evaluation: registers and the current value are equality
    /// classes (`UNDEF_CLASS` = undefined); distinct classes denote distinct
    /// non-null values.
    fn eval_sym(&self, regs: &[u8], cur: u8) -> bool {
        match self {
            Cond::True => true,
            Cond::Eq(r) => regs[r.0 as usize] != UNDEF_CLASS && regs[r.0 as usize] == cur,
            Cond::Neq(r) => regs[r.0 as usize] != UNDEF_CLASS && regs[r.0 as usize] != cur,
            Cond::And(a, b) => a.eval_sym(regs, cur) && b.eval_sym(regs, cur),
            Cond::Or(a, b) => a.eval_sym(regs, cur) || b.eval_sym(regs, cur),
        }
    }
}

/// Action on an ε-transition.
#[derive(Clone, Debug)]
pub enum EpsAction {
    /// Plain ε-move.
    Jump,
    /// `↓x̄`: store the current data value into these registers.
    Store(Vec<Reg>),
    /// `[c]`: proceed only if the condition holds for the current value.
    Check(Cond),
}

const UNDEF: u32 = u32::MAX;
const UNDEF_CLASS: u8 = u8::MAX;

/// A register automaton over data paths.
#[derive(Clone, Debug)]
pub struct RegisterAutomaton {
    n_regs: usize,
    initial: u32,
    accepting: Vec<bool>,
    eps: Vec<Vec<(EpsAction, u32)>>,
    steps: Vec<Vec<(Label, u32)>>,
}

/// Incremental construction of a [`RegisterAutomaton`] (used by the REM
/// compiler in `gde-dataquery`).
#[derive(Clone, Debug)]
pub struct Builder {
    n_regs: usize,
    initial: u32,
    accepting: Vec<bool>,
    eps: Vec<Vec<(EpsAction, u32)>>,
    steps: Vec<Vec<(Label, u32)>>,
}

impl Builder {
    /// A builder for an automaton with `n_regs` registers.
    pub fn new(n_regs: usize) -> Builder {
        Builder {
            n_regs,
            initial: 0,
            accepting: Vec::new(),
            eps: Vec::new(),
            steps: Vec::new(),
        }
    }

    /// Number of states added so far.
    pub fn state_count(&self) -> usize {
        self.accepting.len()
    }

    /// Add a state, returning its id.
    pub fn add_state(&mut self) -> u32 {
        self.accepting.push(false);
        self.eps.push(Vec::new());
        self.steps.push(Vec::new());
        (self.accepting.len() - 1) as u32
    }

    /// Mark the initial state.
    pub fn set_initial(&mut self, s: u32) {
        self.initial = s;
    }

    /// Mark a state accepting.
    pub fn set_accepting(&mut self, s: u32) {
        self.accepting[s as usize] = true;
    }

    /// Add an ε-transition with an action.
    pub fn add_eps(&mut self, from: u32, action: EpsAction, to: u32) {
        self.eps[from as usize].push((action, to));
    }

    /// Add a letter transition.
    pub fn add_step(&mut self, from: u32, label: Label, to: u32) {
        self.steps[from as usize].push((label, to));
    }

    /// Finish.
    pub fn build(self) -> RegisterAutomaton {
        RegisterAutomaton {
            n_regs: self.n_regs,
            initial: self.initial,
            accepting: self.accepting,
            eps: self.eps,
            steps: self.steps,
        }
    }
}

impl RegisterAutomaton {
    /// Number of registers.
    pub fn n_regs(&self) -> usize {
        self.n_regs
    }

    /// Number of states.
    pub fn state_count(&self) -> usize {
        self.accepting.len()
    }

    /// A copy of this automaton with every transition label rewritten
    /// through `f`. States, registers, ε-actions and acceptance are
    /// untouched, so the copy is exactly the compiled automaton of the
    /// label-substituted REM — how compiled query *templates* stamp out
    /// bound instances without re-running Thompson construction.
    pub fn map_labels(&self, mut f: impl FnMut(Label) -> Label) -> RegisterAutomaton {
        RegisterAutomaton {
            n_regs: self.n_regs,
            initial: self.initial,
            accepting: self.accepting.clone(),
            eps: self.eps.clone(),
            steps: self
                .steps
                .iter()
                .map(|ts| ts.iter().map(|&(l, t)| (f(l), t)).collect())
                .collect(),
        }
    }

    /// Does the automaton accept this data path?
    pub fn accepts(&self, w: &DataPath) -> bool {
        // Value table for the path: registers hold indices into it.
        let values = w.values();
        let labels = w.labels();
        type Cfg = (u32, u32, Box<[u32]>); // (pos, state, regs)
        let mut seen: FxHashSet<Cfg> = FxHashSet::default();
        let mut queue: VecDeque<Cfg> = VecDeque::new();
        let init: Cfg = (0, self.initial, vec![UNDEF; self.n_regs].into_boxed_slice());
        seen.insert(init.clone());
        queue.push_back(init);
        let reg_values = |regs: &[u32]| -> Vec<Option<&Value>> {
            regs.iter()
                .map(|&i| (i != UNDEF).then(|| &values[i as usize]))
                .collect()
        };
        while let Some((pos, state, regs)) = queue.pop_front() {
            if pos as usize == labels.len() && self.accepting[state as usize] {
                return true;
            }
            let cur = &values[pos as usize];
            for (action, to) in &self.eps[state as usize] {
                let next_regs = match action {
                    EpsAction::Jump => regs.clone(),
                    EpsAction::Store(rs) => {
                        let mut r2 = regs.clone();
                        for r in rs {
                            r2[r.0 as usize] = pos;
                        }
                        r2
                    }
                    EpsAction::Check(c) => {
                        if !c.eval(&reg_values(&regs), cur) {
                            continue;
                        }
                        regs.clone()
                    }
                };
                let cfg = (pos, *to, next_regs);
                if seen.insert(cfg.clone()) {
                    queue.push_back(cfg);
                }
            }
            if (pos as usize) < labels.len() {
                for &(l, to) in &self.steps[state as usize] {
                    if l == labels[pos as usize] {
                        let cfg = (pos + 1, to, regs.clone());
                        if seen.insert(cfg.clone()) {
                            queue.push_back(cfg);
                        }
                    }
                }
            }
        }
        false
    }

    /// Evaluate on a data graph from one start node: the set of nodes `v'`
    /// such that some path `from →π v'` has `δ(π)` accepted.
    ///
    /// Freezes the graph once ([`GraphSnapshot`]) and delegates to
    /// [`RegisterAutomaton::eval_from_snapshot`]. For repeated evaluation
    /// over one graph, build the snapshot yourself and reuse it.
    pub fn eval_from(&self, g: &DataGraph, from: NodeId) -> Vec<NodeId> {
        self.eval_from_snapshot(&g.snapshot(), from)
    }

    /// [`RegisterAutomaton::eval_from`] against a frozen snapshot.
    ///
    /// Configurations are `(node, state, registers)` where registers hold
    /// the snapshot's interned value ids (data complexity is polynomial for
    /// a fixed automaton; the register count drives the exponent, matching
    /// the PSPACE combined complexity of memory RPQs). Conditions evaluate
    /// by integer vid comparison; letter transitions walk the snapshot's
    /// per-label CSR slices.
    pub fn eval_from_snapshot(&self, s: &GraphSnapshot, from: NodeId) -> Vec<NodeId> {
        let Some(start) = s.idx(from) else {
            return Vec::new();
        };
        let undef = GraphSnapshot::no_vid();
        let null_vid = s.null_vid();
        type Cfg = (u32, u32, Box<[u32]>); // (node, state, regs as value ids)
        let mut seen: FxHashSet<Cfg> = FxHashSet::default();
        let mut out = vec![false; s.n()];
        let mut queue: VecDeque<Cfg> = VecDeque::new();
        let init: Cfg = (
            start,
            self.initial,
            vec![undef; self.n_regs].into_boxed_slice(),
        );
        seen.insert(init.clone());
        queue.push_back(init);
        while let Some((node, state, regs)) = queue.pop_front() {
            if self.accepting[state as usize] {
                out[node as usize] = true;
            }
            let cur_vid = s.vid(node);
            for (action, to) in &self.eps[state as usize] {
                let next_regs = match action {
                    EpsAction::Jump => regs.clone(),
                    EpsAction::Store(rs) => {
                        let mut r2 = regs.clone();
                        for r in rs {
                            r2[r.0 as usize] = cur_vid;
                        }
                        r2
                    }
                    EpsAction::Check(c) => {
                        if !c.eval_vids(&regs, cur_vid, null_vid, undef) {
                            continue;
                        }
                        regs.clone()
                    }
                };
                let cfg = (node, *to, next_regs);
                if seen.insert(cfg.clone()) {
                    queue.push_back(cfg);
                }
            }
            for &(l, to) in &self.steps[state as usize] {
                for &w in s.out(l, node) {
                    let cfg = (w, to, regs.clone());
                    if seen.insert(cfg.clone()) {
                        queue.push_back(cfg);
                    }
                }
            }
        }
        (0..s.n() as u32)
            .filter(|&d| out[d as usize])
            .map(|d| s.id_at(d))
            .collect()
    }

    /// Row-restricted evaluation: the rows of the full answer relation
    /// whose *source* index lies in `rows`, over dense snapshot indices.
    /// The per-start BFS only launches from the given rows (configurations
    /// still roam the whole graph), so a partition of `0..n` splits the
    /// full evaluation's work across shards exactly.
    pub fn eval_rows_snapshot(&self, s: &GraphSnapshot, rows: std::ops::Range<usize>) -> Relation {
        crate::eval_rows_by(s, rows, |from| self.eval_from_snapshot(s, from))
    }

    /// Does any source row in `rows` reach an answer? Early-exits on the
    /// first matching start row.
    pub fn holds_in_rows(&self, s: &GraphSnapshot, rows: std::ops::Range<usize>) -> bool {
        crate::holds_in_rows_by(s, rows, |from| self.eval_from_snapshot(s, from))
    }

    /// Full evaluation `e(G)` as sorted `(NodeId, NodeId)` pairs. The graph
    /// is frozen once; the per-start BFS shares the snapshot.
    pub fn eval_pairs(&self, g: &DataGraph) -> Vec<(NodeId, NodeId)> {
        self.eval_pairs_snapshot(&g.snapshot())
    }

    /// [`RegisterAutomaton::eval_pairs`] against a prebuilt snapshot.
    pub fn eval_pairs_snapshot(&self, s: &GraphSnapshot) -> Vec<(NodeId, NodeId)> {
        let mut out = Vec::new();
        for u in 0..s.n() as u32 {
            let u_id = s.id_at(u);
            for v in self.eval_from_snapshot(s, u_id) {
                out.push((u_id, v));
            }
        }
        out.sort();
        out
    }

    /// Symbolic nonemptiness: is `L(A)` nonempty over an infinite value
    /// domain? Returns a witness data path (with integer values realizing
    /// the equality pattern) when nonempty.
    ///
    /// Register contents are abstracted by an equality partition; distinct
    /// classes denote distinct values, which is sound because the domain is
    /// infinite. This is the standard PSPACE construction of \[25, 31\].
    pub fn find_witness(&self) -> Option<DataPath> {
        // Symbolic config: (state, cur class, reg classes), canonically
        // renamed. Transition records for witness replay:
        //   eps: no letter; letter(l, Some(r)): new value equals register r;
        //   letter(l, None): fresh value.
        type SymCfg = (u32, u8, Box<[u8]>);
        #[derive(Clone)]
        struct Parent {
            cfg: SymCfg,
            step: Option<(Label, Option<Reg>)>,
            action: Option<EpsAction>,
        }
        let canon = |cur: u8, regs: &[u8]| -> (u8, Box<[u8]>) {
            let mut map = [UNDEF_CLASS; 256];
            let mut next = 0u8;
            let rename = |c: u8, map: &mut [u8; 256], next: &mut u8| -> u8 {
                if c == UNDEF_CLASS {
                    return UNDEF_CLASS;
                }
                if map[c as usize] == UNDEF_CLASS {
                    map[c as usize] = *next;
                    *next += 1;
                }
                map[c as usize]
            };
            let new_cur = rename(cur, &mut map, &mut next);
            let new_regs: Vec<u8> = regs
                .iter()
                .map(|&c| rename(c, &mut map, &mut next))
                .collect();
            (new_cur, new_regs.into_boxed_slice())
        };

        let init_cfg: SymCfg = {
            let (c, r) = canon(0, &vec![UNDEF_CLASS; self.n_regs]);
            (self.initial, c, r)
        };
        let mut parents: FxHashMap<SymCfg, Option<Parent>> = FxHashMap::default();
        parents.insert(init_cfg.clone(), None);
        let mut queue: VecDeque<SymCfg> = VecDeque::new();
        queue.push_back(init_cfg);
        let mut accept_cfg: Option<SymCfg> = None;

        'bfs: while let Some(cfg) = queue.pop_front() {
            let (state, cur, ref regs) = cfg;
            if self.accepting[state as usize] {
                accept_cfg = Some(cfg.clone());
                break 'bfs;
            }
            for (action, to) in &self.eps[state as usize] {
                let next_regs: Box<[u8]> = match action {
                    EpsAction::Jump => regs.clone(),
                    EpsAction::Store(rs) => {
                        let mut r2 = regs.clone();
                        for r in rs {
                            r2[r.0 as usize] = cur;
                        }
                        r2
                    }
                    EpsAction::Check(c) => {
                        if !c.eval_sym(regs, cur) {
                            continue;
                        }
                        regs.clone()
                    }
                };
                let (nc, nr) = canon(cur, &next_regs);
                let next: SymCfg = (*to, nc, nr);
                if !parents.contains_key(&next) {
                    parents.insert(
                        next.clone(),
                        Some(Parent {
                            cfg: cfg.clone(),
                            step: None,
                            action: Some(action.clone()),
                        }),
                    );
                    queue.push_back(next);
                }
            }
            for &(l, to) in &self.steps[state as usize] {
                // choice: new current value equals some register's class, or fresh
                let mut choices: Vec<(u8, Option<Reg>)> = Vec::new();
                let mut seen_classes = [false; 256];
                for (ri, &c) in regs.iter().enumerate() {
                    if c != UNDEF_CLASS && !seen_classes[c as usize] {
                        seen_classes[c as usize] = true;
                        choices.push((c, Some(Reg(ri as u8))));
                    }
                }
                // fresh class = max used + 1 (canonicalized away anyway)
                let fresh = regs
                    .iter()
                    .copied()
                    .filter(|&c| c != UNDEF_CLASS)
                    .max()
                    .map_or(0, |m| m + 1)
                    .max(cur.wrapping_add(1));
                choices.push((fresh, None));
                for (new_cur, why) in choices {
                    let (nc, nr) = canon(new_cur, regs);
                    let next: SymCfg = (to, nc, nr);
                    if !parents.contains_key(&next) {
                        parents.insert(
                            next.clone(),
                            Some(Parent {
                                cfg: cfg.clone(),
                                step: Some((l, why)),
                                action: None,
                            }),
                        );
                        queue.push_back(next);
                    }
                }
            }
        }

        let accept = accept_cfg?;
        // Reconstruct the transition sequence, then replay concretely.
        let mut trace: Vec<Parent> = Vec::new();
        let mut cur = accept;
        while let Some(Some(p)) = parents.get(&cur) {
            trace.push(p.clone());
            cur = p.cfg.clone();
        }
        trace.reverse();

        let mut fresh_counter: i64 = 0;
        let mut fresh = || {
            fresh_counter += 1;
            Value::int(fresh_counter)
        };
        let mut regs: Vec<Option<Value>> = vec![None; self.n_regs];
        let mut current = fresh();
        let mut path = DataPath::single(current.clone());
        for p in trace {
            if let Some((l, why)) = p.step {
                current = match why {
                    Some(r) => regs[r.0 as usize].clone().expect("witness replay"),
                    None => fresh(),
                };
                path.push(l, current.clone());
            } else if let Some(EpsAction::Store(rs)) = p.action {
                for r in rs {
                    regs[r.0 as usize] = Some(current.clone());
                }
            }
        }
        debug_assert!(
            self.accepts(&path),
            "reconstructed witness must be accepted"
        );
        Some(path)
    }
}

// ----- closure properties (§3: REM/register automata are closed under
// union, intersection, concatenation and Kleene star, but not complement) --

impl Cond {
    /// Shift every register index by `offset` (for disjoint-register
    /// constructions).
    fn shift(&self, offset: u8) -> Cond {
        match self {
            Cond::True => Cond::True,
            Cond::Eq(r) => Cond::Eq(Reg(r.0 + offset)),
            Cond::Neq(r) => Cond::Neq(Reg(r.0 + offset)),
            Cond::And(a, b) => Cond::and(a.shift(offset), b.shift(offset)),
            Cond::Or(a, b) => Cond::or(a.shift(offset), b.shift(offset)),
        }
    }
}

impl EpsAction {
    fn shift(&self, offset: u8) -> EpsAction {
        match self {
            EpsAction::Jump => EpsAction::Jump,
            EpsAction::Store(rs) => {
                EpsAction::Store(rs.iter().map(|r| Reg(r.0 + offset)).collect())
            }
            EpsAction::Check(c) => EpsAction::Check(c.shift(offset)),
        }
    }
}

impl RegisterAutomaton {
    /// Copy `other`'s states into `b`, with states offset by the current
    /// state count and registers offset by `reg_offset`; returns the state
    /// offset.
    fn append_into(&self, b: &mut Builder, reg_offset: u8) -> u32 {
        let offset = b.state_count() as u32;
        for _ in 0..self.state_count() {
            b.add_state();
        }
        for (s, outs) in self.eps.iter().enumerate() {
            for (act, t) in outs {
                b.add_eps(s as u32 + offset, act.shift(reg_offset), *t + offset);
            }
        }
        for (s, outs) in self.steps.iter().enumerate() {
            for &(l, t) in outs {
                b.add_step(s as u32 + offset, l, t + offset);
            }
        }
        offset
    }

    fn accepting_states(&self) -> Vec<u32> {
        (0..self.state_count() as u32)
            .filter(|&s| self.accepting[s as usize])
            .collect()
    }

    /// `L(A) ∪ L(B)` — disjoint-register union.
    pub fn union(&self, other: &RegisterAutomaton) -> RegisterAutomaton {
        let regs = self.n_regs + other.n_regs;
        assert!(regs <= 255, "too many registers");
        let mut b = Builder::new(regs);
        let start = b.add_state();
        b.set_initial(start);
        let off_a = self.append_into(&mut b, 0);
        let off_b = other.append_into(&mut b, self.n_regs as u8);
        b.add_eps(start, EpsAction::Jump, self.initial + off_a);
        b.add_eps(start, EpsAction::Jump, other.initial + off_b);
        for s in self.accepting_states() {
            b.set_accepting(s + off_a);
        }
        for s in other.accepting_states() {
            b.set_accepting(s + off_b);
        }
        b.build()
    }

    /// `L(A) · L(B)` — data-path concatenation (shared junction value).
    pub fn concat(&self, other: &RegisterAutomaton) -> RegisterAutomaton {
        let regs = self.n_regs + other.n_regs;
        assert!(regs <= 255, "too many registers");
        let mut b = Builder::new(regs);
        let off_a = self.append_into(&mut b, 0);
        let off_b = other.append_into(&mut b, self.n_regs as u8);
        b.set_initial(self.initial + off_a);
        for s in self.accepting_states() {
            b.add_eps(s + off_a, EpsAction::Jump, other.initial + off_b);
        }
        for s in other.accepting_states() {
            b.set_accepting(s + off_b);
        }
        b.build()
    }

    /// `L(A)⁺` — registers persist across iterations, matching the paper's
    /// `(e⁺, w, σ) ⊢ σ'` chaining rule.
    pub fn plus(&self) -> RegisterAutomaton {
        let mut b = Builder::new(self.n_regs);
        let off = self.append_into(&mut b, 0);
        b.set_initial(self.initial + off);
        for s in self.accepting_states() {
            b.set_accepting(s + off);
            b.add_eps(s + off, EpsAction::Jump, self.initial + off);
        }
        b.build()
    }

    /// `L(A)* = {d} ∪ L(A)⁺` (single-value paths always included).
    pub fn star(&self) -> RegisterAutomaton {
        let mut b = Builder::new(self.n_regs);
        let start = b.add_state();
        b.set_initial(start);
        b.set_accepting(start);
        let off = self.append_into(&mut b, 0);
        b.add_eps(start, EpsAction::Jump, self.initial + off);
        for s in self.accepting_states() {
            b.set_accepting(s + off);
            b.add_eps(s + off, EpsAction::Jump, self.initial + off);
        }
        b.build()
    }

    /// `L(A) ∩ L(B)` — synchronized product with disjoint registers:
    /// letter transitions move in lockstep, ε-actions interleave (both
    /// sides read the same current data value, so conditions commute).
    pub fn intersect(&self, other: &RegisterAutomaton) -> RegisterAutomaton {
        let regs = self.n_regs + other.n_regs;
        assert!(regs <= 255, "too many registers");
        let shift = self.n_regs as u8;
        let mut b = Builder::new(regs);
        let pair_id = |p: u32, q: u32| p * other.state_count() as u32 + q;
        for p in 0..self.state_count() as u32 {
            for q in 0..other.state_count() as u32 {
                let s = b.add_state();
                debug_assert_eq!(s, pair_id(p, q));
                if self.accepting[p as usize] && other.accepting[q as usize] {
                    b.set_accepting(s);
                }
            }
        }
        b.set_initial(pair_id(self.initial, other.initial));
        for p in 0..self.state_count() as u32 {
            for q in 0..other.state_count() as u32 {
                for (act, p2) in &self.eps[p as usize] {
                    b.add_eps(pair_id(p, q), act.clone(), pair_id(*p2, q));
                }
                for (act, q2) in &other.eps[q as usize] {
                    b.add_eps(pair_id(p, q), act.shift(shift), pair_id(p, *q2));
                }
                for &(l1, p2) in &self.steps[p as usize] {
                    for &(l2, q2) in &other.steps[q as usize] {
                        if l1 == l2 {
                            b.add_step(pair_id(p, q), l1, pair_id(p2, q2));
                        }
                    }
                }
            }
        }
        b.build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gde_datagraph::Alphabet;

    /// Build the automaton for `↓x.(a[x≠])⁺`: all values along an a-path
    /// differ from the first (§3's first example).
    fn all_differ_from_first(a: Label) -> RegisterAutomaton {
        let x = Reg(0);
        let mut b = Builder::new(1);
        let s0 = b.add_state(); // before storing
        let s1 = b.add_state(); // stored, ready to read a
        let s2 = b.add_state(); // after a, check x≠
        let s3 = b.add_state(); // checked; accepting, can loop
        b.set_initial(s0);
        b.add_eps(s0, EpsAction::Store(vec![x]), s1);
        b.add_step(s1, a, s2);
        b.add_eps(s2, EpsAction::Check(Cond::Neq(x)), s3);
        b.add_eps(s3, EpsAction::Jump, s1);
        b.set_accepting(s3);
        b.build()
    }

    fn dp(vals: &[i64], l: Label) -> DataPath {
        let mut p = DataPath::single(Value::int(vals[0]));
        for &v in &vals[1..] {
            p.push(l, Value::int(v));
        }
        p
    }

    #[test]
    fn accepts_all_differ() {
        let a = Label(0);
        let ra = all_differ_from_first(a);
        assert!(ra.accepts(&dp(&[1, 2, 3, 4], a)));
        assert!(ra.accepts(&dp(&[1, 2], a)));
        assert!(ra.accepts(&dp(&[1, 2, 2], a))); // repeats fine, just ≠ first
        assert!(!ra.accepts(&dp(&[1, 2, 1], a)));
        assert!(!ra.accepts(&dp(&[1], a))); // needs at least one step
    }

    #[test]
    fn null_comparisons_never_true() {
        let a = Label(0);
        let ra = all_differ_from_first(a);
        let mut p = DataPath::single(Value::int(1));
        p.push(a, Value::Null);
        // 1 ≠ ⊥ must NOT hold under SQL semantics
        assert!(!ra.accepts(&p));
        let mut p2 = DataPath::single(Value::Null);
        p2.push(a, Value::int(5));
        assert!(!ra.accepts(&p2));
    }

    #[test]
    fn graph_eval_from() {
        let a = Label(0);
        // cycle 0(v=1) -a-> 1(v=2) -a-> 2(v=1) -a-> 0
        let mut g = DataGraph::new();
        let mut al = Alphabet::new();
        al.intern("a");
        *g.alphabet_mut() = al;
        g.add_node(NodeId(0), Value::int(1)).unwrap();
        g.add_node(NodeId(1), Value::int(2)).unwrap();
        g.add_node(NodeId(2), Value::int(1)).unwrap();
        g.add_edge(NodeId(0), a, NodeId(1)).unwrap();
        g.add_edge(NodeId(1), a, NodeId(2)).unwrap();
        g.add_edge(NodeId(2), a, NodeId(0)).unwrap();
        let ra = all_differ_from_first(a);
        // from node 0 (value 1): can reach 1 (value 2, differs); cannot
        // accept at 2 (value 1 equals first); cannot accept at 0 again.
        let ends = ra.eval_from(&g, NodeId(0));
        assert_eq!(ends, vec![NodeId(1)]);
        // from node 1 (value 2): reach 2 (1≠2) and 0 (1≠2): both
        let ends = ra.eval_from(&g, NodeId(1));
        assert_eq!(ends, vec![NodeId(0), NodeId(2)]);
    }

    #[test]
    fn witness_extraction() {
        let a = Label(0);
        let ra = all_differ_from_first(a);
        let w = ra.find_witness().expect("language nonempty");
        assert!(ra.accepts(&w));
        assert!(!w.is_empty());
    }

    #[test]
    fn empty_language_no_witness() {
        // check x= immediately after storing x and stepping... build an
        // automaton requiring d≠d: store x, then check x≠ with no step.
        let x = Reg(0);
        let mut b = Builder::new(1);
        let s0 = b.add_state();
        let s1 = b.add_state();
        let s2 = b.add_state();
        b.set_initial(s0);
        b.add_eps(s0, EpsAction::Store(vec![x]), s1);
        b.add_eps(s1, EpsAction::Check(Cond::Neq(x)), s2);
        b.set_accepting(s2);
        let ra = b.build();
        assert!(ra.find_witness().is_none());
    }

    #[test]
    fn same_value_twice_witness() {
        // Σ* ↓x Σ+[x=] Σ*  over one letter — same data value occurs twice.
        let a = Label(0);
        let x = Reg(0);
        let mut b = Builder::new(1);
        let s0 = b.add_state();
        let s1 = b.add_state(); // stored
        let s2 = b.add_state(); // moved ≥1
        let s3 = b.add_state(); // checked =; accepting + trailing
        b.set_initial(s0);
        b.add_step(s0, a, s0);
        b.add_eps(s0, EpsAction::Store(vec![x]), s1);
        b.add_step(s1, a, s2);
        b.add_step(s2, a, s2);
        b.add_eps(s2, EpsAction::Check(Cond::Eq(x)), s3);
        b.add_step(s3, a, s3);
        b.set_accepting(s3);
        let ra = b.build();
        let w = ra.find_witness().expect("nonempty");
        assert!(ra.accepts(&w));
        // check witness really repeats a value
        let vals = w.values();
        assert!(vals
            .iter()
            .enumerate()
            .any(|(i, v)| vals[i + 1..].contains(v)));

        assert!(ra.accepts(&dp(&[7, 1, 7], a)));
        assert!(!ra.accepts(&dp(&[1, 2, 3], a)));
    }

    /// automaton for a single a-step whose target equals the first value:
    /// ↓x. a [x=]
    fn step_back_to_first(a: Label) -> RegisterAutomaton {
        let x = Reg(0);
        let mut b = Builder::new(1);
        let s0 = b.add_state();
        let s1 = b.add_state();
        let s2 = b.add_state();
        let s3 = b.add_state();
        b.set_initial(s0);
        b.add_eps(s0, EpsAction::Store(vec![x]), s1);
        b.add_step(s1, a, s2);
        b.add_eps(s2, EpsAction::Check(Cond::Eq(x)), s3);
        b.set_accepting(s3);
        b.build()
    }

    #[test]
    fn closure_union() {
        let a = Label(0);
        let u = all_differ_from_first(a).union(&step_back_to_first(a));
        assert!(u.accepts(&dp(&[1, 2, 3], a))); // left branch
        assert!(u.accepts(&dp(&[1, 1], a))); // right branch
        assert!(!u.accepts(&dp(&[1, 2, 1], a))); // neither
        assert_eq!(u.n_regs(), 2);
    }

    #[test]
    fn closure_concat() {
        let a = Label(0);
        // (all-differ) · (step-back): e.g. 1 2 | 2 2? concat shares junction:
        // w1 = 1 a 2 (differs), w2 = 2 a 2 (returns to its own first = 2)
        let c = all_differ_from_first(a).concat(&step_back_to_first(a));
        assert!(c.accepts(&dp(&[1, 2, 2], a)));
        assert!(!c.accepts(&dp(&[1, 2, 3], a)));
        assert!(!c.accepts(&dp(&[1, 2], a))); // too short
    }

    #[test]
    fn closure_plus_and_star() {
        let a = Label(0);
        let once = step_back_to_first(a);
        let plus = once.plus();
        // (↓x a[x=])⁺: every step returns to the value it started from,
        // registers re-stored each iteration ⇒ constant-ish runs like
        // 1a1a1 and also 1a1 then 1a1 …
        assert!(plus.accepts(&dp(&[5, 5], a)));
        assert!(plus.accepts(&dp(&[5, 5, 5], a)));
        assert!(!plus.accepts(&dp(&[5, 6], a)));
        assert!(!plus.accepts(&dp(&[5], a)));
        let star = once.star();
        assert!(star.accepts(&dp(&[9], a))); // single value
        assert!(star.accepts(&dp(&[5, 5], a)));
        assert!(!star.accepts(&dp(&[5, 6], a)));
    }

    #[test]
    fn closure_intersection() {
        let a = Label(0);
        // all-differ-from-first ∩ "length ≥ 2 path whose last equals second"
        // simpler: all-differ ∩ all-differ = all-differ
        let d = all_differ_from_first(a);
        let i = d.intersect(&d);
        assert!(i.accepts(&dp(&[1, 2, 3], a)));
        assert!(!i.accepts(&dp(&[1, 2, 1], a)));
        // intersect with step-back: w must both differ-from-first everywhere
        // and have the single step return to the first value — contradiction
        let contradiction = d.intersect(&step_back_to_first(a));
        assert!(contradiction.find_witness().is_none());
        // union of automaton with its "complementish" partner is not
        // universal (no complement closure): witness exists outside both
        let u = d.union(&step_back_to_first(a));
        assert!(!u.accepts(&dp(&[1, 2, 1], a)));
    }

    #[test]
    fn closure_ops_compose_with_graph_eval() {
        use gde_datagraph::NodeId;
        let a = Label(0);
        let mut g = DataGraph::new();
        g.alphabet_mut().intern("a");
        // 0(v1) -a-> 1(v1), 1 -a-> 2(v2)
        g.add_node(NodeId(0), Value::int(1)).unwrap();
        g.add_node(NodeId(1), Value::int(1)).unwrap();
        g.add_node(NodeId(2), Value::int(2)).unwrap();
        g.add_edge(NodeId(0), a, NodeId(1)).unwrap();
        g.add_edge(NodeId(1), a, NodeId(2)).unwrap();
        let u = step_back_to_first(a).plus();
        let pairs = u.eval_pairs(&g);
        assert_eq!(pairs, vec![(NodeId(0), NodeId(1))]);
    }

    #[test]
    fn cond_negation_swaps() {
        let c = Cond::and(Cond::Eq(Reg(0)), Cond::Neq(Reg(1)));
        let n = c.negate();
        assert_eq!(n, Cond::or(Cond::Neq(Reg(0)), Cond::Eq(Reg(1))));
    }

    /// Remark 2: the two-valued collapse agrees with SQL's three-valued
    /// logic on *true*, for every condition over every null pattern.
    #[test]
    fn remark2_two_valued_equals_three_valued_on_true() {
        let conds = [
            Cond::Eq(Reg(0)),
            Cond::Neq(Reg(0)),
            Cond::and(Cond::Eq(Reg(0)), Cond::Neq(Reg(1))),
            Cond::or(Cond::Eq(Reg(0)), Cond::Neq(Reg(1))),
            Cond::or(
                Cond::and(Cond::Eq(Reg(0)), Cond::Eq(Reg(1))),
                Cond::Neq(Reg(0)),
            ),
        ];
        let vals = [Value::int(1), Value::int(2), Value::Null];
        for c in &conds {
            for r0 in &vals {
                for r1 in &vals {
                    for cur in &vals {
                        let regs: Vec<Option<&Value>> = vec![Some(r0), Some(r1)];
                        let two = c.eval(&regs, cur);
                        let three = c.eval_sql3(&regs, cur);
                        assert_eq!(
                            two,
                            three == Some(true),
                            "cond {c:?} regs ({r0},{r1}) cur {cur}"
                        );
                    }
                }
            }
        }
    }

    /// Unknown genuinely arises in 3VL where 2VL says false — the collapse
    /// is a collapse, not an identity.
    #[test]
    fn remark2_unknown_exists() {
        let c = Cond::Eq(Reg(0));
        let null = Value::Null;
        let regs: Vec<Option<&Value>> = vec![Some(&null)];
        assert_eq!(c.eval_sql3(&regs, &Value::int(1)), None);
        assert!(!c.eval(&regs, &Value::int(1)));
    }

    #[test]
    fn cond_eval_undefined_register_false() {
        let regs: Vec<Option<&Value>> = vec![None];
        let v = Value::int(1);
        assert!(!Cond::Eq(Reg(0)).eval(&regs, &v));
        assert!(!Cond::Neq(Reg(0)).eval(&regs, &v));
        assert!(Cond::True.eval(&regs, &v));
    }
}
