//! A recursive-descent parser for [`Regex`].
//!
//! Grammar (whitespace insensitive):
//!
//! ```text
//! expr   := term ('|' term)*              -- union  (paper: e + e)
//! term   := factor+                       -- concatenation (paper: e · e)
//! factor := atom ('*' | '+')*             -- Kleene star / plus
//! atom   := IDENT | '(' expr ')' | 'eps' | 'ε' | 'empty' | '∅'
//! IDENT  := [A-Za-z_][A-Za-z0-9_]*  (also single-char symbolic labels like '#')
//! ```
//!
//! The paper writes union as `e + e`; since `+` is also its Kleene-plus, the
//! concrete syntax here uses `|` for union and postfix `+` for repetition.
//! Label names are interned into the supplied [`Alphabet`].

use crate::regex::Regex;
use gde_datagraph::Alphabet;
use std::fmt;

/// A parse failure, with a byte offset into the input.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// Byte position of the failure.
    pub pos: usize,
    /// Human-readable description.
    pub msg: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at byte {}: {}", self.pos, self.msg)
    }
}

impl std::error::Error for ParseError {}

/// Parse a regular expression, interning label names into `alphabet`.
pub fn parse_regex(input: &str, alphabet: &mut Alphabet) -> Result<Regex, ParseError> {
    let mut p = Parser {
        chars: input.char_indices().collect(),
        pos: 0,
        alphabet,
    };
    let e = p.expr()?;
    p.skip_ws();
    if p.pos < p.chars.len() {
        return Err(p.err("trailing input"));
    }
    Ok(e)
}

struct Parser<'a> {
    chars: Vec<(usize, char)>,
    pos: usize,
    alphabet: &'a mut Alphabet,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> ParseError {
        ParseError {
            pos: self.chars.get(self.pos).map_or_else(
                || self.chars.last().map_or(0, |&(i, c)| i + c.len_utf8()),
                |&(i, _)| i,
            ),
            msg: msg.to_string(),
        }
    }

    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).map(|&(_, c)| c)
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek();
        if c.is_some() {
            self.pos += 1;
        }
        c
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(c) if c.is_whitespace() || c == '·' || c == '.') {
            self.pos += 1;
        }
    }

    fn expr(&mut self) -> Result<Regex, ParseError> {
        let mut terms = vec![self.term()?];
        loop {
            self.skip_ws();
            if self.peek() == Some('|') {
                self.bump();
                terms.push(self.term()?);
            } else {
                break;
            }
        }
        Ok(if terms.len() == 1 {
            terms.pop().unwrap()
        } else {
            Regex::Union(terms)
        })
    }

    fn term(&mut self) -> Result<Regex, ParseError> {
        let mut factors = Vec::new();
        loop {
            self.skip_ws();
            match self.peek() {
                Some(c) if c == '|' || c == ')' => break,
                None => break,
                _ => factors.push(self.factor()?),
            }
        }
        Ok(match factors.len() {
            0 => Regex::Epsilon,
            1 => factors.pop().unwrap(),
            _ => Regex::Concat(factors),
        })
    }

    fn factor(&mut self) -> Result<Regex, ParseError> {
        let mut e = self.atom()?;
        loop {
            self.skip_ws();
            match self.peek() {
                Some('*') => {
                    self.bump();
                    e = Regex::Star(Box::new(e));
                }
                Some('+') => {
                    self.bump();
                    e = Regex::Plus(Box::new(e));
                }
                _ => break,
            }
        }
        Ok(e)
    }

    fn atom(&mut self) -> Result<Regex, ParseError> {
        self.skip_ws();
        match self.peek() {
            Some('(') => {
                self.bump();
                let e = self.expr()?;
                self.skip_ws();
                if self.bump() != Some(')') {
                    return Err(self.err("expected ')'"));
                }
                Ok(e)
            }
            Some('ε') => {
                self.bump();
                Ok(Regex::Epsilon)
            }
            Some('∅') => {
                self.bump();
                Ok(Regex::Empty)
            }
            Some(c) if is_ident_start(c) => {
                let name = self.ident();
                match name.as_str() {
                    "eps" => Ok(Regex::Epsilon),
                    "empty" => Ok(Regex::Empty),
                    _ => Ok(Regex::Atom(self.alphabet.intern(&name))),
                }
            }
            Some(c) if is_symbolic_label(c) => {
                self.bump();
                Ok(Regex::Atom(self.alphabet.intern(&c.to_string())))
            }
            Some('\'') => {
                self.bump();
                let mut name = String::new();
                loop {
                    match self.bump() {
                        Some('\'') => break,
                        Some(c) => name.push(c),
                        None => return Err(self.err("unterminated quoted label")),
                    }
                }
                Ok(Regex::Atom(self.alphabet.intern(&name)))
            }
            Some(_) => Err(self.err("expected an atom")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn ident(&mut self) -> String {
        let mut s = String::new();
        while let Some(c) = self.peek() {
            if c.is_alphanumeric() || c == '_' {
                s.push(c);
                self.pos += 1;
            } else {
                break;
            }
        }
        s
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

/// Single-character labels used by the paper's gadgets: separators such as
/// `#`, `↔`, arrows and overbarred letters.
fn is_symbolic_label(c: char) -> bool {
    matches!(
        c,
        '#' | '↔' | '←' | '→' | '⇠' | '⇢' | '$' | '@' | '%' | '^' | '&' | '!' | '~'
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &str) -> (Regex, Alphabet) {
        let mut a = Alphabet::new();
        let e = parse_regex(s, &mut a).unwrap();
        (e, a)
    }

    #[test]
    fn atoms_and_concat() {
        let (e, a) = parse("a b c");
        assert_eq!(
            e.as_word().unwrap(),
            vec![
                a.label("a").unwrap(),
                a.label("b").unwrap(),
                a.label("c").unwrap()
            ]
        );
    }

    #[test]
    fn explicit_dots_allowed() {
        let (e, _) = parse("a·b.c");
        assert_eq!(e.as_word().unwrap().len(), 3);
    }

    #[test]
    fn union_and_postfix() {
        let (e, a) = parse("(a|b)+ c*");
        let al = a;
        assert_eq!(e.display(&al), "(a | b)+ c*");
    }

    #[test]
    fn epsilon_and_empty() {
        let (e, _) = parse("eps");
        assert_eq!(e, Regex::Epsilon);
        let (e, _) = parse("ε");
        assert_eq!(e, Regex::Epsilon);
        let (e, _) = parse("empty");
        assert_eq!(e, Regex::Empty);
        let (e, _) = parse("");
        assert_eq!(e, Regex::Epsilon);
    }

    #[test]
    fn symbolic_labels() {
        let (e, a) = parse("# ↔");
        assert_eq!(
            e.as_word().unwrap(),
            vec![a.label("#").unwrap(), a.label("↔").unwrap()]
        );
    }

    #[test]
    fn quoted_labels() {
        let (e, a) = parse("'paid/src' '@amount'");
        assert_eq!(
            e.as_word().unwrap(),
            vec![a.label("paid/src").unwrap(), a.label("@amount").unwrap()]
        );
        let mut al = Alphabet::new();
        assert!(parse_regex("'unterminated", &mut al).is_err());
    }

    #[test]
    fn nested_groups() {
        let (e, al) = parse("((a b) | (b a))+");
        assert_eq!(e.display(&al), "(a b | b a)+");
    }

    #[test]
    fn errors() {
        let mut a = Alphabet::new();
        assert!(parse_regex("(a", &mut a).is_err());
        assert!(parse_regex("a)", &mut a).is_err());
        assert!(parse_regex("*", &mut a).is_err());
    }

    #[test]
    fn roundtrip_display_parse() {
        let exprs = ["a", "a b", "(a | b)+", "a* b+ | ε", "(a b | c)* d"];
        for src in exprs {
            let mut al = Alphabet::new();
            let e1 = parse_regex(src, &mut al).unwrap();
            let printed = e1.display(&al);
            let e2 = parse_regex(&printed, &mut al).unwrap();
            assert_eq!(e1.display(&al), e2.display(&al), "roundtrip for {src}");
        }
    }
}
