//! Thompson NFAs and classical RPQ evaluation on data graphs (§2).
//!
//! [`Nfa::from_regex`] is the standard Thompson construction;
//! [`Nfa::eval`] computes `e(G) = {(v,v') | ∃π: v →π v', λ(π) ∈ L(e)}`
//! by a product BFS over `(node, state)` configurations, which is the
//! textbook NLogspace RPQ algorithm.

use crate::regex::Regex;
use gde_datagraph::{DataGraph, GraphSnapshot, Label, NodeId, Relation, RelationBuilder};
use std::collections::VecDeque;

/// A nondeterministic finite automaton over edge labels.
#[derive(Clone, Debug)]
pub struct Nfa {
    initial: u32,
    accepting: Vec<bool>,
    eps: Vec<Vec<u32>>,
    steps: Vec<Vec<(Label, u32)>>,
}

struct Frag {
    start: u32,
    end: u32,
}

impl Nfa {
    fn add_state(&mut self) -> u32 {
        self.eps.push(Vec::new());
        self.steps.push(Vec::new());
        self.accepting.push(false);
        (self.eps.len() - 1) as u32
    }

    /// Number of states.
    pub fn state_count(&self) -> usize {
        self.eps.len()
    }

    /// A copy of this automaton with every transition label rewritten
    /// through `f`. States, ε-transitions and acceptance are untouched, so
    /// the copy is exactly the Thompson NFA of the label-substituted
    /// regex — this is how compiled query *templates* stamp out bound
    /// instances without re-running the construction.
    pub fn map_labels(&self, mut f: impl FnMut(Label) -> Label) -> Nfa {
        Nfa {
            initial: self.initial,
            accepting: self.accepting.clone(),
            eps: self.eps.clone(),
            steps: self
                .steps
                .iter()
                .map(|ts| ts.iter().map(|&(l, t)| (f(l), t)).collect())
                .collect(),
        }
    }

    /// Thompson construction.
    pub fn from_regex(e: &Regex) -> Nfa {
        let mut nfa = Nfa {
            initial: 0,
            accepting: Vec::new(),
            eps: Vec::new(),
            steps: Vec::new(),
        };
        let frag = nfa.build(e);
        nfa.initial = frag.start;
        nfa.accepting[frag.end as usize] = true;
        nfa
    }

    fn build(&mut self, e: &Regex) -> Frag {
        match e {
            Regex::Empty => {
                let s = self.add_state();
                let t = self.add_state();
                Frag { start: s, end: t }
            }
            Regex::Epsilon => {
                let s = self.add_state();
                Frag { start: s, end: s }
            }
            Regex::Atom(l) => {
                let s = self.add_state();
                let t = self.add_state();
                self.steps[s as usize].push((*l, t));
                Frag { start: s, end: t }
            }
            Regex::Concat(es) => {
                if es.is_empty() {
                    return self.build(&Regex::Epsilon);
                }
                let mut iter = es.iter();
                let first = self.build(iter.next().unwrap());
                let mut cur_end = first.end;
                for sub in iter {
                    let f = self.build(sub);
                    self.eps[cur_end as usize].push(f.start);
                    cur_end = f.end;
                }
                Frag {
                    start: first.start,
                    end: cur_end,
                }
            }
            Regex::Union(es) => {
                let s = self.add_state();
                let t = self.add_state();
                if es.is_empty() {
                    // ∅: no branches
                }
                for sub in es {
                    let f = self.build(sub);
                    self.eps[s as usize].push(f.start);
                    self.eps[f.end as usize].push(t);
                }
                Frag { start: s, end: t }
            }
            Regex::Plus(sub) => {
                let f = self.build(sub);
                let s = self.add_state();
                let t = self.add_state();
                self.eps[s as usize].push(f.start);
                self.eps[f.end as usize].push(t);
                self.eps[f.end as usize].push(f.start);
                Frag { start: s, end: t }
            }
            Regex::Star(sub) => {
                let f = self.build(sub);
                let s = self.add_state();
                let t = self.add_state();
                self.eps[s as usize].push(f.start);
                self.eps[f.end as usize].push(t);
                self.eps[f.end as usize].push(f.start);
                self.eps[s as usize].push(t);
                Frag { start: s, end: t }
            }
        }
    }

    /// Assemble an NFA directly from parts (no ε-transitions): used by the
    /// DFA → NFA view. State ids index `accepting`/`transitions`.
    pub fn from_parts(
        initial: u32,
        accepting: Vec<bool>,
        transitions: Vec<Vec<(Label, u32)>>,
    ) -> Nfa {
        assert_eq!(accepting.len(), transitions.len());
        Nfa {
            initial,
            eps: vec![Vec::new(); accepting.len()],
            steps: transitions,
            accepting,
        }
    }

    /// Is a state accepting?
    pub fn is_accepting(&self, state: u32) -> bool {
        self.accepting[state as usize]
    }

    /// The ε-closure of the initial state, sorted (for subset construction).
    pub fn initial_closure(&self) -> Vec<u32> {
        let mut set = vec![self.initial];
        let mut seen = vec![false; self.state_count()];
        seen[self.initial as usize] = true;
        self.eps_closure_into(&mut set, &mut seen);
        set.sort_unstable();
        set
    }

    /// One subset-construction step: ε-closure of the `label`-successors of
    /// a state set, sorted.
    pub fn step_closure(&self, states: &[u32], label: Label) -> Vec<u32> {
        let mut next = Vec::new();
        let mut seen = vec![false; self.state_count()];
        for &s in states {
            for &(l, t) in &self.steps[s as usize] {
                if l == label && !seen[t as usize] {
                    seen[t as usize] = true;
                    next.push(t);
                }
            }
        }
        self.eps_closure_into(&mut next, &mut seen);
        next.sort_unstable();
        next
    }

    fn eps_closure_into(&self, states: &mut Vec<u32>, seen: &mut [bool]) {
        let mut stack: Vec<u32> = states.clone();
        while let Some(s) = stack.pop() {
            for &t in &self.eps[s as usize] {
                if !seen[t as usize] {
                    seen[t as usize] = true;
                    states.push(t);
                    stack.push(t);
                }
            }
        }
    }

    /// Word membership `w ∈ L(e)` (used as a test oracle and by mapping
    /// classification).
    pub fn accepts(&self, word: &[Label]) -> bool {
        let q = self.state_count();
        let mut cur = vec![self.initial];
        let mut seen = vec![false; q];
        seen[self.initial as usize] = true;
        self.eps_closure_into(&mut cur, &mut seen);
        for &l in word {
            let mut next = Vec::new();
            let mut seen2 = vec![false; q];
            for &s in &cur {
                for &(sl, t) in &self.steps[s as usize] {
                    if sl == l && !seen2[t as usize] {
                        seen2[t as usize] = true;
                        next.push(t);
                    }
                }
            }
            self.eps_closure_into(&mut next, &mut seen2);
            cur = next;
            if cur.is_empty() {
                return false;
            }
        }
        cur.iter().any(|&s| self.accepting[s as usize])
    }

    /// Is `L(e)` nonempty? (Graph reachability from initial to accepting.)
    pub fn language_nonempty(&self) -> bool {
        let q = self.state_count();
        let mut seen = vec![false; q];
        let mut stack = vec![self.initial];
        seen[self.initial as usize] = true;
        while let Some(s) = stack.pop() {
            if self.accepting[s as usize] {
                return true;
            }
            for &t in &self.eps[s as usize] {
                if !seen[t as usize] {
                    seen[t as usize] = true;
                    stack.push(t);
                }
            }
            for &(_, t) in &self.steps[s as usize] {
                if !seen[t as usize] {
                    seen[t as usize] = true;
                    stack.push(t);
                }
            }
        }
        false
    }

    /// Enumerate all words of `L` with length ≤ `k`, up to `cap` words
    /// (callers detect truncation by `result.len() > cap - 1`... more
    /// precisely: at most `cap` words are returned; if exactly `cap` are
    /// returned the language may contain more). Deterministic DFS over
    /// state sets, so each word is produced once.
    pub fn words_up_to(&self, k: usize, cap: usize) -> Vec<Vec<Label>> {
        let mut out: Vec<Vec<Label>> = Vec::new();
        let q = self.state_count();
        let mut init = vec![self.initial];
        let mut seen = vec![false; q];
        seen[self.initial as usize] = true;
        self.eps_closure_into(&mut init, &mut seen);
        let mut word: Vec<Label> = Vec::new();
        self.words_rec(&init, k, cap, &mut word, &mut out);
        out
    }

    fn words_rec(
        &self,
        states: &[u32],
        budget: usize,
        cap: usize,
        word: &mut Vec<Label>,
        out: &mut Vec<Vec<Label>>,
    ) {
        if out.len() >= cap {
            return;
        }
        if states.iter().any(|&s| self.accepting[s as usize]) {
            out.push(word.clone());
        }
        if budget == 0 {
            return;
        }
        // candidate labels from the current state set
        let mut labels: Vec<Label> = states
            .iter()
            .flat_map(|&s| self.steps[s as usize].iter().map(|&(l, _)| l))
            .collect();
        labels.sort();
        labels.dedup();
        for l in labels {
            let q = self.state_count();
            let mut next = Vec::new();
            let mut seen = vec![false; q];
            for &s in states {
                for &(sl, t) in &self.steps[s as usize] {
                    if sl == l && !seen[t as usize] {
                        seen[t as usize] = true;
                        next.push(t);
                    }
                }
            }
            self.eps_closure_into(&mut next, &mut seen);
            if next.is_empty() {
                continue;
            }
            word.push(l);
            self.words_rec(&next, budget - 1, cap, word, out);
            word.pop();
            if out.len() >= cap {
                return;
            }
        }
    }

    /// Find some accepted word of length strictly greater than `k`, if one
    /// exists. Layered forward reachability to length `k+1`, then a
    /// shortest completion to an accepting state.
    pub fn some_word_longer_than(&self, k: usize) -> Option<Vec<Label>> {
        let q = self.state_count();
        // can_accept[s]: an accepting state is reachable from s (any moves)
        let mut can_accept = vec![false; q];
        {
            // reverse edges
            let mut rev: Vec<Vec<u32>> = vec![Vec::new(); q];
            for s in 0..q {
                for &t in &self.eps[s] {
                    rev[t as usize].push(s as u32);
                }
                for &(_, t) in &self.steps[s] {
                    rev[t as usize].push(s as u32);
                }
            }
            let mut stack: Vec<u32> = (0..q as u32)
                .filter(|&s| self.accepting[s as usize])
                .collect();
            for &s in &stack {
                can_accept[s as usize] = true;
            }
            while let Some(s) = stack.pop() {
                for &p in &rev[s as usize] {
                    if !can_accept[p as usize] {
                        can_accept[p as usize] = true;
                        stack.push(p);
                    }
                }
            }
        }
        // layered forward: parent[l][state] = (prev_state, label)
        let mut layer: Vec<u32> = vec![self.initial];
        let mut seen = vec![false; q];
        seen[self.initial as usize] = true;
        self.eps_closure_into(&mut layer, &mut seen);
        let mut parents: Vec<Vec<Option<(u32, Label)>>> = vec![vec![None; q]];
        let mut layers: Vec<Vec<u32>> = vec![layer];
        for _ in 0..=k {
            let prev = layers.last().unwrap();
            let mut next: Vec<u32> = Vec::new();
            let mut seen2 = vec![false; q];
            let mut parent: Vec<Option<(u32, Label)>> = vec![None; q];
            for &s in prev {
                for &(l, t) in &self.steps[s as usize] {
                    if !seen2[t as usize] {
                        seen2[t as usize] = true;
                        parent[t as usize] = Some((s, l));
                        next.push(t);
                    }
                }
            }
            // eps closure, propagating the letter-parent tag
            let mut stack: Vec<u32> = next.clone();
            while let Some(s) = stack.pop() {
                for &t in &self.eps[s as usize] {
                    if !seen2[t as usize] {
                        seen2[t as usize] = true;
                        parent[t as usize] = parent[s as usize];
                        next.push(t);
                        stack.push(t);
                    }
                }
            }
            layers.push(next);
            parents.push(parent);
        }
        // a state at layer k+1 from which acceptance is reachable?
        let last = &layers[k + 1];
        let &start_suffix = last.iter().find(|&&s| can_accept[s as usize])?;
        // prefix of length k+1
        let mut prefix: Vec<Label> = Vec::new();
        let mut cur = start_suffix;
        for l in (1..=k + 1).rev() {
            let (p, lab) = parents[l][cur as usize].expect("layered parent");
            prefix.push(lab);
            cur = p;
        }
        prefix.reverse();
        // shortest completion from start_suffix to acceptance
        let mut suffix: Vec<Label> = Vec::new();
        {
            let mut prev: Vec<Option<(u32, Option<Label>)>> = vec![None; q];
            let mut seen3 = vec![false; q];
            let mut queue = VecDeque::new();
            queue.push_back(start_suffix);
            seen3[start_suffix as usize] = true;
            let mut goal = None;
            'bfs: while let Some(s) = queue.pop_front() {
                if self.accepting[s as usize] {
                    goal = Some(s);
                    break 'bfs;
                }
                for &t in &self.eps[s as usize] {
                    if !seen3[t as usize] {
                        seen3[t as usize] = true;
                        prev[t as usize] = Some((s, None));
                        queue.push_back(t);
                    }
                }
                for &(l, t) in &self.steps[s as usize] {
                    if !seen3[t as usize] {
                        seen3[t as usize] = true;
                        prev[t as usize] = Some((s, Some(l)));
                        queue.push_back(t);
                    }
                }
            }
            let mut cur = goal.expect("can_accept guaranteed a path");
            while cur != start_suffix {
                let (p, lab) = prev[cur as usize].expect("bfs parent");
                if let Some(l) = lab {
                    suffix.push(l);
                }
                cur = p;
            }
            suffix.reverse();
        }
        prefix.extend(suffix);
        debug_assert!(self.accepts(&prefix));
        debug_assert!(prefix.len() > k);
        Some(prefix)
    }

    /// All nodes reachable from `from` along a path whose label is in the
    /// language: one product BFS over the graph's adjacency lists (no
    /// freezing — the right entry point for one-off, per-edge checks like
    /// solution verification).
    pub fn eval_from(&self, g: &DataGraph, from: NodeId) -> Vec<NodeId> {
        let Some(start) = g.idx(from) else {
            return Vec::new();
        };
        let mask = self.product_bfs(g.n(), start, |v, l, visit| {
            for &(el, w) in g.out_at(v) {
                if el == l {
                    visit(w);
                }
            }
        });
        (0..g.n() as u32)
            .filter(|&d| mask[d as usize])
            .map(|d| g.id_at(d))
            .collect()
    }

    /// The shared product-BFS core of [`Nfa::eval_from`] and
    /// [`Nfa::eval_from_snapshot`]: explore `(node, state)` configurations,
    /// where `succs(v, l, visit)` enumerates the `l`-successors of `v`.
    /// Returns the per-node "reached in an accepting state" mask.
    fn product_bfs(
        &self,
        n: usize,
        start: u32,
        mut succs: impl FnMut(u32, Label, &mut dyn FnMut(u32)),
    ) -> Vec<bool> {
        let q = self.state_count();
        let mut seen = vec![false; n * q];
        let mut out_mask = vec![false; n];
        let mut queue: VecDeque<(u32, u32)> = VecDeque::new();

        let push =
            |node: u32, state: u32, seen: &mut Vec<bool>, queue: &mut VecDeque<(u32, u32)>| {
                let slot = node as usize * q + state as usize;
                if !seen[slot] {
                    seen[slot] = true;
                    queue.push_back((node, state));
                }
            };

        push(start, self.initial, &mut seen, &mut queue);
        while let Some((v, s)) = queue.pop_front() {
            if self.accepting[s as usize] {
                out_mask[v as usize] = true;
            }
            for &t in &self.eps[s as usize] {
                push(v, t, &mut seen, &mut queue);
            }
            for &(l, t) in &self.steps[s as usize] {
                succs(v, l, &mut |w| push(w, t, &mut seen, &mut queue));
            }
        }
        out_mask
    }

    /// Is there a path `from → to` whose label is **rejected** by this
    /// automaton? This evaluates the complement RPQ `Σ* \ L` without
    /// materializing a complement automaton: a BFS over `(node, state-set)`
    /// pairs with on-the-fly subset construction. Used by the Theorem 1
    /// gadget, whose error query includes the complement of the well-formed
    /// path shape.
    pub fn exists_rejected_path(&self, g: &DataGraph, from: NodeId, to: NodeId) -> bool {
        use gde_datagraph::FxHashSet;
        let (Some(start), Some(goal)) = (g.idx(from), g.idx(to)) else {
            return false;
        };
        let q = self.state_count();
        let init_set = {
            let mut s = vec![self.initial];
            let mut seen = vec![false; q];
            seen[self.initial as usize] = true;
            self.eps_closure_into(&mut s, &mut seen);
            s.sort_unstable();
            s
        };
        let mut visited: FxHashSet<(u32, Vec<u32>)> = FxHashSet::default();
        let mut queue: VecDeque<(u32, Vec<u32>)> = VecDeque::new();
        visited.insert((start, init_set.clone()));
        queue.push_back((start, init_set));
        while let Some((node, set)) = queue.pop_front() {
            if node == goal && !set.iter().any(|&s| self.accepting[s as usize]) {
                return true;
            }
            // group out-edges by label
            let mut labels: Vec<Label> = g.out_at(node).iter().map(|&(l, _)| l).collect();
            labels.sort();
            labels.dedup();
            for l in labels {
                let mut next_set = Vec::new();
                let mut seen = vec![false; q];
                for &s in &set {
                    for &(sl, t) in &self.steps[s as usize] {
                        if sl == l && !seen[t as usize] {
                            seen[t as usize] = true;
                            next_set.push(t);
                        }
                    }
                }
                self.eps_closure_into(&mut next_set, &mut seen);
                next_set.sort_unstable();
                for &(el, w) in g.out_at(node) {
                    if el == l {
                        let key = (w, next_set.clone());
                        if !visited.contains(&key) {
                            visited.insert(key.clone());
                            queue.push_back(key);
                        }
                    }
                }
            }
        }
        false
    }

    /// [`Nfa::eval_from`] against a frozen [`GraphSnapshot`]: the product
    /// BFS steps through label-partitioned CSR slices instead of filtering
    /// each node's full out-list per automaton step.
    pub fn eval_from_snapshot(&self, s: &GraphSnapshot, from: NodeId) -> Vec<NodeId> {
        let Some(start) = s.idx(from) else {
            return Vec::new();
        };
        let mask = self.product_bfs(s.n(), start, |v, l, visit| {
            for &w in s.out(l, v) {
                visit(w);
            }
        });
        (0..s.n() as u32)
            .filter(|&d| mask[d as usize])
            .map(|d| s.id_at(d))
            .collect()
    }

    /// Full RPQ evaluation `e(G)` as a [`Relation`] over dense node indices.
    /// Freezes the graph once and runs the CSR-based BFS from every node.
    pub fn eval(&self, g: &DataGraph) -> Relation {
        self.eval_snapshot(&g.snapshot())
    }

    /// Full RPQ evaluation against a prebuilt snapshot. Rows are collected
    /// through a [`RelationBuilder`], so large sparse answers get the CSR
    /// representation directly.
    pub fn eval_snapshot(&self, s: &GraphSnapshot) -> Relation {
        let n = s.n();
        let mut b = RelationBuilder::new(n);
        for u in 0..n as u32 {
            for v in self.eval_from_snapshot(s, s.id_at(u)) {
                b.push(u as usize, s.idx(v).unwrap() as usize);
            }
        }
        b.build()
    }

    /// Row-restricted RPQ evaluation: the rows of
    /// [`Nfa::eval_snapshot`]'s relation whose *source* index lies in
    /// `rows`. The product BFS runs only from the given start rows — it
    /// still walks the whole graph, crossing stripe boundaries freely —
    /// so a partition of `0..n` splits the full evaluation's work across
    /// shards exactly, with no overlap and no merge conflicts.
    pub fn eval_rows_snapshot(&self, s: &GraphSnapshot, rows: std::ops::Range<usize>) -> Relation {
        crate::eval_rows_by(s, rows, |from| self.eval_from_snapshot(s, from))
    }

    /// Does any source row in `rows` reach an answer? Early-exits on the
    /// first matching start row — the Boolean projection sharded serving
    /// OR-merges across stripes.
    pub fn holds_in_rows(&self, s: &GraphSnapshot, rows: std::ops::Range<usize>) -> bool {
        crate::holds_in_rows_by(s, rows, |from| self.eval_from_snapshot(s, from))
    }

    /// Full RPQ evaluation as `(NodeId, NodeId)` pairs, sorted.
    pub fn eval_pairs(&self, g: &DataGraph) -> Vec<(NodeId, NodeId)> {
        self.eval_pairs_snapshot(&g.snapshot())
    }

    /// [`Nfa::eval_pairs`] against a prebuilt snapshot.
    pub fn eval_pairs_snapshot(&self, s: &GraphSnapshot) -> Vec<(NodeId, NodeId)> {
        let mut out: Vec<(NodeId, NodeId)> = self
            .eval_snapshot(s)
            .iter_pairs()
            .map(|(i, j)| (s.id_at(i as u32), s.id_at(j as u32)))
            .collect();
        out.sort();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_regex;
    use gde_datagraph::{Alphabet, Value};

    fn graph() -> DataGraph {
        // 0 -a-> 1 -b-> 2 -a-> 3, plus 1 -a-> 1 loop
        let mut g = DataGraph::new();
        for i in 0..4 {
            g.add_node(NodeId(i), Value::int(i as i64)).unwrap();
        }
        g.add_edge_str(NodeId(0), "a", NodeId(1)).unwrap();
        g.add_edge_str(NodeId(1), "b", NodeId(2)).unwrap();
        g.add_edge_str(NodeId(2), "a", NodeId(3)).unwrap();
        g.add_edge_str(NodeId(1), "a", NodeId(1)).unwrap();
        g
    }

    fn nfa_of(g: &mut DataGraph, src: &str) -> Nfa {
        let e = parse_regex(src, g.alphabet_mut()).unwrap();
        Nfa::from_regex(&e)
    }

    #[test]
    fn word_acceptance() {
        let mut al = Alphabet::new();
        let e = parse_regex("(a|b)+ c", &mut al).unwrap();
        let nfa = Nfa::from_regex(&e);
        let a = al.label("a").unwrap();
        let b = al.label("b").unwrap();
        let c = al.label("c").unwrap();
        assert!(nfa.accepts(&[a, c]));
        assert!(nfa.accepts(&[a, b, a, c]));
        assert!(!nfa.accepts(&[c]));
        assert!(!nfa.accepts(&[a, b]));
        assert!(!nfa.accepts(&[]));
    }

    #[test]
    fn epsilon_and_star() {
        let mut al = Alphabet::new();
        let e = parse_regex("a*", &mut al).unwrap();
        let nfa = Nfa::from_regex(&e);
        let a = al.label("a").unwrap();
        assert!(nfa.accepts(&[]));
        assert!(nfa.accepts(&[a, a, a]));
    }

    #[test]
    fn empty_language() {
        let mut al = Alphabet::new();
        let e = parse_regex("empty", &mut al).unwrap();
        let nfa = Nfa::from_regex(&e);
        assert!(!nfa.language_nonempty());
        assert!(!nfa.accepts(&[]));
        let e = parse_regex("empty | a", &mut al).unwrap();
        assert!(Nfa::from_regex(&e).language_nonempty());
    }

    #[test]
    fn graph_eval_word() {
        let mut g = graph();
        let nfa = nfa_of(&mut g, "a b");
        assert_eq!(
            nfa.eval_pairs(&g),
            vec![(NodeId(0), NodeId(2)), (NodeId(1), NodeId(2))]
        );
    }

    #[test]
    fn graph_eval_star_handles_loops() {
        let mut g = graph();
        let nfa = nfa_of(&mut g, "a+");
        let pairs = nfa.eval_pairs(&g);
        // a+ from 0: {1} (via loop also 1); from 1: {1}; from 2: {3}
        assert!(pairs.contains(&(NodeId(0), NodeId(1))));
        assert!(pairs.contains(&(NodeId(1), NodeId(1))));
        assert!(pairs.contains(&(NodeId(2), NodeId(3))));
        assert!(!pairs.contains(&(NodeId(0), NodeId(3))));
    }

    #[test]
    fn graph_eval_reachability() {
        let g = graph();
        let e = Regex::reachability(g.alphabet());
        let nfa = Nfa::from_regex(&e);
        let pairs = nfa.eval_pairs(&g);
        // reachability is reflexive (ε ∈ Σ*)
        assert!(pairs.contains(&(NodeId(3), NodeId(3))));
        assert!(pairs.contains(&(NodeId(0), NodeId(3))));
        assert_eq!(pairs.len(), 4 + 3 + 2 + 1); // 0→{0..3},1→{1,2,3},2→{2,3},3→{3}
    }

    #[test]
    fn eval_from_missing_node() {
        let mut g = graph();
        let nfa = nfa_of(&mut g, "a");
        assert!(nfa.eval_from(&g, NodeId(99)).is_empty());
    }

    #[test]
    fn rejected_path_detection() {
        let mut g = graph(); // 0 -a-> 1 -b-> 2 -a-> 3, 1 -a-> 1
                             // shape "a b a": the path 0→3 via (a b a) is fine, but the loop
                             // offers 0 -a-> 1 -a-> 1 -b-> 2 -a-> 3 labelled "a a b a": rejected.
        let e = parse_regex("a b a", g.alphabet_mut()).unwrap();
        let nfa = Nfa::from_regex(&e);
        assert!(nfa.exists_rejected_path(&g, NodeId(0), NodeId(3)));
        // with shape a a* b a, every 0→3 path conforms
        let e = parse_regex("a a* b a", g.alphabet_mut()).unwrap();
        let nfa = Nfa::from_regex(&e);
        assert!(!nfa.exists_rejected_path(&g, NodeId(0), NodeId(3)));
        // unreachable target: vacuously no rejected path
        assert!(!nfa.exists_rejected_path(&g, NodeId(3), NodeId(0)));
        // empty path at node 0 is rejected when ε ∉ L
        assert!(nfa.exists_rejected_path(&g, NodeId(0), NodeId(0)));
        let estar = parse_regex("a*", g.alphabet_mut()).unwrap();
        let nfa2 = Nfa::from_regex(&estar);
        assert!(!nfa2.exists_rejected_path(&g, NodeId(3), NodeId(3)));
    }

    #[test]
    fn words_up_to_enumerates() {
        let mut al = Alphabet::new();
        let e = parse_regex("a (b | c)", &mut al).unwrap();
        let nfa = Nfa::from_regex(&e);
        let a = al.label("a").unwrap();
        let b = al.label("b").unwrap();
        let c = al.label("c").unwrap();
        let words = nfa.words_up_to(2, 100);
        assert_eq!(words.len(), 2);
        assert!(words.contains(&vec![a, b]));
        assert!(words.contains(&vec![a, c]));
        assert!(nfa.words_up_to(1, 100).is_empty());
        // star: ε, a, aa
        let e = parse_regex("a*", &mut al).unwrap();
        let nfa = Nfa::from_regex(&e);
        let words = nfa.words_up_to(2, 100);
        assert_eq!(words.len(), 3);
        assert!(words.contains(&vec![]));
    }

    #[test]
    fn words_up_to_respects_cap() {
        let mut al = Alphabet::new();
        let e = parse_regex("(a|b)*", &mut al).unwrap();
        let nfa = Nfa::from_regex(&e);
        let words = nfa.words_up_to(10, 5);
        assert_eq!(words.len(), 5);
    }

    #[test]
    fn longer_word_search() {
        let mut al = Alphabet::new();
        let e = parse_regex("a b c", &mut al).unwrap();
        let nfa = Nfa::from_regex(&e);
        assert!(nfa.some_word_longer_than(2).is_some());
        assert!(nfa.some_word_longer_than(3).is_none());
        let e = parse_regex("a+", &mut al).unwrap();
        let nfa = Nfa::from_regex(&e);
        let w = nfa.some_word_longer_than(7).unwrap();
        assert!(w.len() > 7);
        assert!(nfa.accepts(&w));
        let e = parse_regex("a | b b", &mut al).unwrap();
        let nfa = Nfa::from_regex(&e);
        let w = nfa.some_word_longer_than(1).unwrap();
        assert_eq!(w.len(), 2);
    }

    #[test]
    fn eval_matches_naive_word_reachability() {
        use gde_datagraph::path::word_reachable;
        let mut g = graph();
        let e = parse_regex("a a", g.alphabet_mut()).unwrap();
        let nfa = Nfa::from_regex(&e);
        let a = g.alphabet().label("a").unwrap();
        for u in g.node_ids().collect::<Vec<_>>() {
            let mut fast = nfa.eval_from(&g, u);
            let mut slow = word_reachable(&g, u, &[a, a]);
            fast.sort();
            slow.sort();
            assert_eq!(fast, slow, "from {u}");
        }
    }
}
