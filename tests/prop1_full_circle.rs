//! The full Proposition-1 circle: graph-side certain answers for word
//! queries coincide with relational naive evaluation over the chased
//! `M_rel` — the two stacks answer identically.

use gde_core::translate::{chase_universal, translate_to_relational};
use gde_core::{answer_once, Semantics};
use gde_datagraph::NodeId;
use gde_dataquery::{parse_ree, DataQuery};
use gde_relational::{certain_answers_cq, Atom, ConjunctiveQuery, Term};
use gde_workload::{random_scenario, GraphConfig, ScenarioConfig};

/// Build the CQ `q_w(x, y) = ∃z̄ E_{a₁}(x,z₁) ∧ … ∧ E_{a_k}(z_{k-1}, y)`
/// for a target word given by label names.
fn word_cq(rm: &gde_core::translate::RelationalMapping, word: &[&str]) -> ConjunctiveQuery {
    let rels: Vec<_> = word
        .iter()
        .map(|name| rm.target.schema.lookup(&format!("E_{name}")).unwrap())
        .collect();
    let k = rels.len();
    let mut atoms = Vec::new();
    for (j, rel) in rels.iter().enumerate() {
        let from = if j == 0 { 0 } else { 1 + j as u32 };
        let to = if j + 1 == k { 1 } else { 2 + j as u32 };
        atoms.push(Atom::vars(*rel, [from, to]));
    }
    ConjunctiveQuery {
        head: vec![0, 1],
        atoms,
    }
}

#[test]
fn word_queries_agree_across_the_two_stacks() {
    for seed in 0..10u64 {
        let sc = random_scenario(&ScenarioConfig {
            graph: GraphConfig {
                nodes: 8,
                edges: 12,
                labels: vec!["a".into(), "b".into()],
                value_pool: 3,
                seed,
            },
            target_labels: vec!["x".into(), "y".into()],
            max_word_len: 2,
            seed: seed + 77,
        });
        let rm = translate_to_relational(&sc.gsm, &sc.source).unwrap();
        let chased = chase_universal(&rm).unwrap();

        for word in [
            vec!["x"],
            vec!["y"],
            vec!["x", "y"],
            vec!["y", "x"],
            vec!["x", "x"],
        ] {
            // graph side
            let mut ta = sc.gsm.target_alphabet().clone();
            let q: DataQuery = parse_ree(&word.join(" "), &mut ta).unwrap().into();
            let graph_answers = answer_once(&sc.gsm, &sc.source, &q.compile(), Semantics::nulls())
                .unwrap()
                .into_pairs();
            // relational side
            let cq = word_cq(&rm, &word);
            let mut rel_answers: Vec<(NodeId, NodeId)> = certain_answers_cq(&chased, &cq)
                .into_iter()
                .map(|tuple| {
                    let (Term::Node(u), Term::Node(v)) = (&tuple[0], &tuple[1]) else {
                        panic!("node positions must hold nodes");
                    };
                    (*u, *v)
                })
                .collect();
            rel_answers.sort();
            rel_answers.dedup();
            assert_eq!(
                graph_answers, rel_answers,
                "seed {seed}, word {word:?}: graph vs relational disagreement"
            );
        }
    }
}

#[test]
fn boolean_certainty_agrees_for_word_queries() {
    let sc = random_scenario(&ScenarioConfig {
        graph: GraphConfig {
            nodes: 6,
            edges: 9,
            labels: vec!["a".into()],
            value_pool: 2,
            seed: 5,
        },
        target_labels: vec!["x".into(), "y".into()],
        max_word_len: 2,
        seed: 13,
    });
    let rm = translate_to_relational(&sc.gsm, &sc.source).unwrap();
    let chased = chase_universal(&rm).unwrap();
    for word in [vec!["x"], vec!["x", "y"], vec!["y", "y"]] {
        let mut ta = sc.gsm.target_alphabet().clone();
        let q: DataQuery = parse_ree(&word.join(" "), &mut ta).unwrap().into();
        let graph_bool = answer_once(
            &sc.gsm,
            &sc.source,
            &q.compile(),
            Semantics::nulls_boolean(),
        )
        .unwrap()
        .boolean();
        let cq = word_cq(&rm, &word);
        let rel_bool = gde_relational::certain_boolean_cq(&chased, &cq);
        assert_eq!(graph_bool, rel_bool, "word {word:?}");
    }
}
