//! Engine equivalence: the owned `MappingService`, the deprecated
//! `PreparedMapping` wrapper and the deprecated one-shot free functions
//! must all answer identically, across the workload generators' scenarios
//! and every query class.
//!
//! This is the contract that makes the serving-API redesign safe: the
//! legacy entry points are thin wrappers over `MappingService::answer`,
//! and the service's cached solutions + snapshots + compiled queries must
//! be observationally identical to rebuilding everything per call. The
//! legacy calls below are deliberate — they are the reference being
//! compared against.
#![allow(deprecated)]
//!
//! Since the wrappers now share the snapshot-based evaluation code with
//! the engine, the wrapper-vs-engine checks alone would not catch a bug in
//! the snapshot layer itself (both sides would be identically wrong). The
//! `snapshot_eval_matches_naive_oracle` test closes that hole: it
//! re-implements REE/RPQ evaluation directly over the graph's adjacency
//! iterators — the pre-snapshot evaluation strategy — and compares the
//! production path against it on random graphs and queries.

use gde_core::{
    certain_answers_exact, certain_answers_least_informative, certain_answers_nulls,
    certain_boolean_least_informative, certain_boolean_nulls, Answer, ExactOptions, MappingService,
    Mode, PreparedMapping, Semantics, SolveError,
};
use gde_datagraph::{DataGraph, Relation};
use gde_dataquery::{DataQuery, Ree};
use gde_workload::{
    random_data_graph, random_ree, random_rem, random_scenario, social_serving_scenario,
    GraphConfig, QueryConfig, ScenarioConfig, SocialConfig,
};

/// A mixed query batch over the target labels of a random scenario.
fn random_query_batch(seed: u64) -> Vec<DataQuery> {
    let mut out: Vec<DataQuery> = Vec::new();
    for (i, allow_inequality) in [(0u64, false), (1, false), (2, true), (3, true)] {
        let cfg = QueryConfig {
            seed: seed.wrapping_mul(31).wrapping_add(i),
            allow_inequality,
            depth: 2,
            ..QueryConfig::default()
        };
        out.push(random_ree(&cfg).into());
        out.push(random_rem(&cfg).into());
    }
    out
}

#[test]
fn prepared_matches_free_functions_on_random_scenarios() {
    for seed in 0..12u64 {
        let sc = random_scenario(&ScenarioConfig {
            graph: GraphConfig {
                nodes: 10,
                edges: 18,
                value_pool: 3,
                seed,
                ..GraphConfig::default()
            },
            max_word_len: 3,
            seed: seed ^ 0xA11CE,
            ..ScenarioConfig::default()
        });
        let prepared = PreparedMapping::new(&sc.gsm, &sc.source);
        for (qi, q) in random_query_batch(seed).into_iter().enumerate() {
            let compiled = q.compile();
            // 2ⁿ engine
            let free = certain_answers_nulls(&sc.gsm, &q, &sc.source).unwrap();
            let served = prepared.certain_answers_nulls(&compiled).unwrap();
            assert_eq!(free, served, "2ⁿ mismatch: seed {seed} query {qi} {q:?}");
            let free_b = certain_boolean_nulls(&sc.gsm, &q, &sc.source).unwrap();
            let served_b = prepared.certain_boolean_nulls(&compiled).unwrap();
            assert_eq!(
                free_b, served_b,
                "2ⁿ boolean mismatch: seed {seed} query {qi}"
            );
            // 2 engine (equality-only fragment)
            let free_li = certain_answers_least_informative(&sc.gsm, &q, &sc.source);
            let served_li = prepared.certain_answers_least_informative(&compiled);
            assert_eq!(
                free_li, served_li,
                "2 mismatch: seed {seed} query {qi} {q:?}"
            );
            let free_lib = certain_boolean_least_informative(&sc.gsm, &q, &sc.source);
            let served_lib = prepared.certain_boolean_least_informative(&compiled);
            assert_eq!(
                free_lib, served_lib,
                "2 boolean mismatch: seed {seed} query {qi}"
            );
            // serving dispatch agrees with whichever engine it routes to
            let dispatched = prepared.certain_answers(&compiled).unwrap();
            if q.is_equality_only() {
                assert_eq!(dispatched, served_li.unwrap(), "dispatch ≠ 2: seed {seed}");
            } else {
                assert_eq!(dispatched, served, "dispatch ≠ 2ⁿ: seed {seed}");
            }
        }
    }
}

/// The acceptance contract of the API redesign: `MappingService::answer`
/// with each `Semantics` variant returns answers identical to the
/// pre-redesign `PreparedMapping` methods, on the existing workloads.
#[test]
fn service_matches_prepared_mapping_on_every_semantics() {
    for seed in 0..5u64 {
        let sc = random_scenario(&ScenarioConfig {
            graph: GraphConfig {
                nodes: 7,
                edges: 9,
                value_pool: 3,
                seed,
                ..GraphConfig::default()
            },
            max_word_len: 2,
            seed: seed ^ 0x5EC7,
            ..ScenarioConfig::default()
        });
        let prepared = PreparedMapping::new(&sc.gsm, &sc.source);
        let svc = MappingService::new();
        let id = svc.register(sc.gsm.clone(), sc.source.clone());
        for (qi, q) in random_query_batch(seed).into_iter().enumerate() {
            let c = q.compile();
            let ctx = format!("seed {seed} query {qi}");
            assert_eq!(
                svc.answer(id, &c, Semantics::nulls())
                    .map(Answer::into_tuples)
                    .map_err(|e| e.to_string()),
                prepared
                    .certain_answers_nulls(&c)
                    .map_err(|e| e.to_string()),
                "Nulls/Tuples {ctx}"
            );
            assert_eq!(
                svc.answer(id, &c, Semantics::nulls_boolean())
                    .map(|a| a.boolean())
                    .map_err(|e| e.to_string()),
                prepared
                    .certain_boolean_nulls(&c)
                    .map_err(|e| e.to_string()),
                "Nulls/Boolean {ctx}"
            );
            let li_svc = svc.answer(id, &c, Semantics::least_informative());
            let li_old = prepared.certain_answers_least_informative(&c);
            match (li_svc, li_old) {
                (Ok(a), Ok(b)) => assert_eq!(a.into_tuples(), b, "LI/Tuples {ctx}"),
                (
                    Err(gde_core::ServeError::UnsupportedQuery(x)),
                    Err(SolveError::UnsupportedQuery(y)),
                ) => {
                    assert_eq!(x, y, "LI error {ctx}")
                }
                (a, b) => panic!("LI divergence {ctx}: {a:?} vs {b:?}"),
            }
            // bounded exact comparisons on a query subset (the enumeration
            // is exponential; both sides must agree on TooComplex too)
            if qi >= 3 {
                continue;
            }
            let opts = ExactOptions {
                max_invented: 10,
                max_patterns: 5_000,
            };
            assert_eq!(
                svc.answer(id, &c, Semantics::Exact(Mode::Tuples, opts))
                    .map(Answer::into_tuples)
                    .map_err(|e| e.to_string()),
                prepared
                    .certain_answers_exact(&q, opts)
                    .map_err(|e| e.to_string()),
                "Exact/Tuples {ctx}"
            );
            assert_eq!(
                svc.answer(id, &c, Semantics::Exact(Mode::Boolean, opts))
                    .map(|a| a.boolean())
                    .map_err(|e| e.to_string()),
                prepared
                    .certain_boolean_exact(&q, opts)
                    .map_err(|e| e.to_string()),
                "Exact/Boolean {ctx}"
            );
            // the one-shot exact free function agrees too
            assert_eq!(
                svc.answer(id, &c, Semantics::Exact(Mode::Tuples, opts))
                    .map(Answer::into_tuples)
                    .map_err(|e| e.to_string()),
                certain_answers_exact(&sc.gsm, &q, &sc.source, opts).map_err(|e| e.to_string()),
                "Exact one-shot {ctx}"
            );
        }
    }
}

#[test]
fn prepared_matches_free_functions_on_social_serving_scenario() {
    let sv = social_serving_scenario(&SocialConfig {
        persons: 25,
        knows_per_person: 3,
        posts: 15,
        cities: 3,
        seed: 0xBEE,
    });
    let gsm = &sv.scenario.gsm;
    let source = &sv.scenario.source;
    let prepared = PreparedMapping::new(gsm, source);
    let mut nonempty = 0;
    for (name, q) in &sv.queries {
        let compiled = q.compile();
        let free = certain_answers_nulls(gsm, q, source).unwrap();
        let served = prepared.certain_answers_nulls(&compiled).unwrap();
        assert_eq!(free, served, "2ⁿ mismatch on {name}");
        if !free.clone().into_pairs().is_empty() {
            nonempty += 1;
        }
        if q.is_equality_only() {
            let free_li = certain_answers_least_informative(gsm, q, source).unwrap();
            let served_li = prepared
                .certain_answers_least_informative(&compiled)
                .unwrap();
            assert_eq!(free_li, served_li, "2 mismatch on {name}");
        }
    }
    assert!(
        nonempty >= 3,
        "serving workload should produce non-trivial answers, got {nonempty}"
    );
}

/// Independent REE oracle: the relation-algebra semantics evaluated
/// directly over [`DataGraph`]'s adjacency iterators and `Value`
/// comparisons — no `GraphSnapshot`, no interned vids, no cached label
/// relations. This mirrors the pre-snapshot evaluation strategy.
fn naive_ree_eval(e: &Ree, g: &DataGraph) -> Relation {
    let n = g.n();
    match e {
        Ree::Epsilon => Relation::identity(n),
        Ree::Atom(l) => {
            let mut r = Relation::empty(n);
            for u in g.node_ids() {
                for (el, v) in g.out_edges(u) {
                    if el == *l {
                        r.insert(g.idx(u).unwrap() as usize, g.idx(v).unwrap() as usize);
                    }
                }
            }
            r
        }
        Ree::Concat(es) => {
            let mut acc = Relation::identity(n);
            for e in es {
                acc = acc.compose(&naive_ree_eval(e, g));
            }
            acc
        }
        Ree::Union(es) => {
            let mut acc = Relation::empty(n);
            for e in es {
                acc.union_with(&naive_ree_eval(e, g));
            }
            acc
        }
        Ree::Plus(e) => naive_ree_eval(e, g).transitive_closure(),
        Ree::Star(e) => naive_ree_eval(e, g).reflexive_transitive_closure(),
        Ree::Eq(e) => {
            naive_ree_eval(e, g).filter(|i, j| g.value_at(i as u32).sql_eq(g.value_at(j as u32)))
        }
        Ree::Neq(e) => {
            naive_ree_eval(e, g).filter(|i, j| g.value_at(i as u32).sql_ne(g.value_at(j as u32)))
        }
    }
}

#[test]
fn snapshot_eval_matches_naive_oracle() {
    for seed in 0..30u64 {
        let g = random_data_graph(&GraphConfig {
            nodes: 9,
            edges: 16,
            value_pool: 3,
            seed,
            ..GraphConfig::default()
        });
        let snap = g.snapshot();
        for (qi, allow_inequality) in [(0u64, false), (1, true), (2, true)] {
            let e = random_ree(&QueryConfig {
                seed: seed.wrapping_mul(101).wrapping_add(qi),
                allow_inequality,
                depth: 3,
                ..QueryConfig::default()
            });
            let expected = naive_ree_eval(&e, &g);
            // production paths: direct, snapshot-shared, and compiled
            assert_eq!(e.eval(&g), expected, "Ree::eval seed {seed} q{qi} {e:?}");
            assert_eq!(
                e.eval_snapshot(&snap),
                expected,
                "Ree::eval_snapshot seed {seed} q{qi}"
            );
            let q: DataQuery = e.clone().into();
            let mut expected_pairs: Vec<_> = expected
                .iter()
                .map(|(i, j)| (g.id_at(i as u32), g.id_at(j as u32)))
                .collect();
            expected_pairs.sort();
            assert_eq!(
                q.compile().eval_pairs(&snap),
                expected_pairs,
                "CompiledQuery seed {seed} q{qi}"
            );
        }
    }
}

#[test]
fn repeated_serving_is_stable() {
    // answering the same compiled query many times must be idempotent
    let sv = social_serving_scenario(&SocialConfig {
        persons: 15,
        knows_per_person: 2,
        posts: 10,
        cities: 2,
        seed: 7,
    });
    let prepared = PreparedMapping::new(&sv.scenario.gsm, &sv.scenario.source);
    for (name, q) in &sv.queries {
        let compiled = q.compile();
        let first = prepared.certain_answers_nulls(&compiled).unwrap();
        for _ in 0..3 {
            assert_eq!(
                prepared.certain_answers_nulls(&compiled).unwrap(),
                first,
                "unstable answers for {name}"
            );
        }
    }
}
