//! Property tests for the REE language semantics: algebraic laws of the
//! relation-algebra evaluation, agreement between data-path membership and
//! graph evaluation, and nonemptiness/witness coherence.

use gde_datagraph::{DataGraph, DataPath, NodeId};
use gde_dataquery::Ree;
use gde_workload::{random_data_graph, GraphConfig};
use proptest::prelude::*;

fn graph(seed: u64) -> DataGraph {
    random_data_graph(&GraphConfig {
        nodes: 8,
        edges: 14,
        value_pool: 3,
        seed,
        ..GraphConfig::default()
    })
}

fn arb_ree() -> impl Strategy<Value = Ree> {
    let leaf = prop_oneof![
        (0u16..2).prop_map(|i| Ree::Atom(gde_datagraph::Label(i))),
        Just(Ree::Epsilon),
    ];
    leaf.prop_recursive(3, 20, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Ree::concat([a, b])),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Ree::union([a, b])),
            inner.clone().prop_map(Ree::plus),
            inner.clone().prop_map(Ree::star),
            inner.clone().prop_map(Ree::eq),
            inner.prop_map(Ree::neq),
        ]
    })
}

/// Turn a data path into a path-shaped graph whose only end-to-end walks
/// are the path itself — making graph evaluation a membership oracle.
fn path_graph(w: &DataPath) -> (DataGraph, NodeId, NodeId) {
    let mut g = DataGraph::new();
    g.alphabet_mut().intern("a");
    g.alphabet_mut().intern("b");
    for (i, v) in w.values().iter().enumerate() {
        g.add_node(NodeId(i as u32), v.clone()).unwrap();
    }
    for (i, l) in w.labels().iter().enumerate() {
        g.add_edge(NodeId(i as u32), *l, NodeId(i as u32 + 1))
            .unwrap();
    }
    (g, NodeId(0), NodeId(w.len() as u32))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn union_is_setwise(a in arb_ree(), b in arb_ree(), seed in 0u64..500) {
        let g = graph(seed);
        let u = Ree::union([a.clone(), b.clone()]).eval(&g);
        let ua = a.eval(&g);
        let ub = b.eval(&g);
        prop_assert_eq!(u.clone(), ua.union(&ub));
    }

    #[test]
    fn concat_is_composition(a in arb_ree(), b in arb_ree(), seed in 0u64..500) {
        let g = graph(seed);
        let c = Ree::concat([a.clone(), b.clone()]).eval(&g);
        prop_assert_eq!(c, a.eval(&g).compose(&b.eval(&g)));
    }

    #[test]
    fn eq_filters_and_shrinks(a in arb_ree(), seed in 0u64..500) {
        let g = graph(seed);
        let base = a.clone().eval(&g);
        let eq = a.clone().eq().eval(&g);
        let neq = a.neq().eval(&g);
        prop_assert!(eq.is_subset_of(&base));
        prop_assert!(neq.is_subset_of(&base));
        // eq and neq partition the non-null part of base
        let mut both = eq.clone();
        both.intersect_with(&neq);
        prop_assert!(both.is_empty());
    }

    #[test]
    fn star_is_eps_plus_plus(a in arb_ree(), seed in 0u64..500) {
        let g = graph(seed);
        let star = a.clone().star().eval(&g);
        let eps_plus = Ree::union([Ree::Epsilon, a.plus()]).eval(&g);
        prop_assert_eq!(star, eps_plus);
    }

    #[test]
    fn witness_membership_and_graph_eval_agree(a in arb_ree()) {
        if let Some(w) = a.sample_witness() {
            prop_assert!(a.matches_path(&w), "witness rejected by membership");
            let (g, s, t) = path_graph(&w);
            prop_assert!(
                a.eval_pairs(&g).contains(&(s, t)),
                "witness path graph disagrees with membership"
            );
        } else {
            prop_assert!(!a.is_nonempty());
        }
    }

    #[test]
    fn membership_matches_path_graph_eval(a in arb_ree(), seed in 0u64..500) {
        // sample a short random data path and compare both semantics
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
        let len = rng.gen_range(0..4usize);
        let mut w = DataPath::single(gde_datagraph::Value::int(rng.gen_range(0..3)));
        for _ in 0..len {
            let l = gde_datagraph::Label(rng.gen_range(0..2u16));
            w.push(l, gde_datagraph::Value::int(rng.gen_range(0..3)));
        }
        let (g, s, t) = path_graph(&w);
        let member = a.matches_path(&w);
        let via_graph = a.eval_pairs(&g).contains(&(s, t));
        prop_assert_eq!(member, via_graph, "path {}", w);
    }

    #[test]
    fn nonempty_iff_some_graph_answer_possible(a in arb_ree()) {
        // if the language is empty, no graph can ever produce answers
        if !a.is_nonempty() {
            for seed in [1u64, 2, 3] {
                let g = graph(seed);
                prop_assert!(a.eval_pairs(&g).is_empty());
            }
        }
    }
}
