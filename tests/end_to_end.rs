//! Cross-crate integration tests: full exchange scenarios exercised through
//! every certain-answer engine, checked for mutual consistency.

use gde_automata::parse_regex;
use gde_core::certain::CertainAnswers;
use gde_core::{
    answer_once, certain_answers_arbitrary, certain_answers_exact, universal_solution,
    ArbitraryOptions, ExactOptions, Gsm, Semantics,
};
use gde_datagraph::{Alphabet, DataGraph, NodeId, Value};
use gde_dataquery::{parse_ree, DataQuery};
use gde_workload::{random_scenario, GraphConfig, ScenarioConfig};

fn small_scenario(seed: u64) -> gde_workload::ExchangeScenario {
    random_scenario(&ScenarioConfig {
        graph: GraphConfig {
            nodes: 6,
            edges: 6,
            labels: vec!["a".into(), "b".into()],
            value_pool: 2,
            seed,
        },
        target_labels: vec!["x".into(), "y".into()],
        max_word_len: 2,
        seed: seed.wrapping_mul(31) + 7,
    })
}

#[test]
fn nulls_is_contained_in_exact_on_random_scenarios() {
    for seed in 0..15u64 {
        let sc = small_scenario(seed);
        let mut ta = sc.gsm.target_alphabet().clone();
        for qsrc in ["x", "x y", "(x y)=", "(x | y)+", "((x | y)+)=", "(x y)!="] {
            let q: DataQuery = parse_ree(qsrc, &mut ta).unwrap().into();
            let nulls = answer_once(&sc.gsm, &sc.source, &q.compile(), Semantics::nulls())
                .unwrap()
                .into_pairs();
            let exact = certain_answers_exact(&sc.gsm, &q, &sc.source, ExactOptions::default())
                .unwrap()
                .into_pairs();
            for p in &nulls {
                assert!(
                    exact.contains(p),
                    "2ⁿ ⊄ 2 for seed {seed}, query {qsrc}: {p:?}"
                );
            }
        }
    }
}

#[test]
fn least_informative_equals_exact_for_equality_only() {
    for seed in 0..15u64 {
        let sc = small_scenario(seed);
        let mut ta = sc.gsm.target_alphabet().clone();
        for qsrc in ["x", "x y", "(x y)=", "((x | y)+)=", "(x= y)="] {
            let q: DataQuery = parse_ree(qsrc, &mut ta).unwrap().into();
            let li = answer_once(
                &sc.gsm,
                &sc.source,
                &q.compile(),
                Semantics::least_informative(),
            )
            .unwrap()
            .into_pairs();
            let exact = certain_answers_exact(&sc.gsm, &q, &sc.source, ExactOptions::default())
                .unwrap()
                .into_pairs();
            assert_eq!(li, exact, "seed {seed}, query {qsrc}");
        }
    }
}

#[test]
fn arbitrary_engine_matches_exact_on_relational_mappings() {
    for seed in 0..8u64 {
        let sc = small_scenario(seed);
        let mut ta = sc.gsm.target_alphabet().clone();
        for qsrc in ["x y", "(x y)=", "(x y)!="] {
            let q: DataQuery = parse_ree(qsrc, &mut ta).unwrap().into();
            let arb = certain_answers_arbitrary(
                &sc.gsm,
                &q,
                &sc.source,
                ArbitraryOptions {
                    max_word_len: 2,
                    ..ArbitraryOptions::default()
                },
            )
            .unwrap();
            let exact =
                certain_answers_exact(&sc.gsm, &q, &sc.source, ExactOptions::default()).unwrap();
            assert_eq!(arb.answers, exact, "seed {seed}, query {qsrc}");
            assert!(arb.exact, "iteration-free query must be flagged exact");
        }
    }
}

#[test]
fn universal_solutions_solve_random_scenarios() {
    for seed in 20..40u64 {
        let sc = small_scenario(seed);
        let sol = universal_solution(&sc.gsm, &sc.source).unwrap();
        assert!(
            sc.gsm.is_solution(&sc.source, &sol.graph),
            "universal solution fails |= M at seed {seed}"
        );
    }
}

/// The motivating end-to-end story: a two-step exchange chain
/// source → staging → warehouse, answered at the warehouse.
#[test]
fn two_step_exchange_chain() {
    // source: orders with customer names
    let mut src = DataGraph::new();
    for (i, name) in [(0, "zoe"), (1, "amir"), (2, "zoe")] {
        src.add_node(NodeId(i), Value::str(name)).unwrap();
    }
    src.add_edge_str(NodeId(0), "ordered_with", NodeId(1))
        .unwrap();
    src.add_edge_str(NodeId(1), "ordered_with", NodeId(2))
        .unwrap();

    // step 1: source → staging
    let mut sa = src.alphabet().clone();
    let mut staging_a = Alphabet::from_labels(["rel"]);
    let mut m1 = Gsm::new(sa.clone(), staging_a.clone());
    m1.add_rule(
        parse_regex("ordered_with", &mut sa).unwrap(),
        parse_regex("rel", &mut staging_a).unwrap(),
    );
    let staged = universal_solution(&m1, &src).unwrap();

    // step 2: staging → warehouse (inventing audit hops)
    let mut wa = Alphabet::from_labels(["audit", "link"]);
    let mut m2 = Gsm::new(staging_a.clone(), wa.clone());
    m2.add_rule(
        parse_regex("rel", &mut staging_a.clone()).unwrap(),
        parse_regex("audit link", &mut wa).unwrap(),
    );

    // same-name customers two hops apart survive both exchanges
    let q: DataQuery = parse_ree("(audit link audit link)=", &mut wa)
        .unwrap()
        .into();
    let answers = answer_once(&m2, &staged.graph, &q.compile(), Semantics::nulls())
        .unwrap()
        .into_pairs();
    assert_eq!(answers, vec![(NodeId(0), NodeId(2))]);
}

#[test]
fn vacuous_mapping_cases() {
    // a mapping with an ε-rule over distinct endpoints has no solutions
    let mut sa = Alphabet::from_labels(["a"]);
    let ta = Alphabet::from_labels(["x"]);
    let mut m = Gsm::new(sa.clone(), ta.clone());
    m.add_rule(
        parse_regex("a", &mut sa).unwrap(),
        gde_automata::Regex::Epsilon,
    );
    let mut gs = DataGraph::new();
    gs.add_node(NodeId(0), Value::int(1)).unwrap();
    gs.add_node(NodeId(1), Value::int(2)).unwrap();
    gs.add_edge_str(NodeId(0), "a", NodeId(1)).unwrap();
    let mut ta2 = ta.clone();
    let q: DataQuery = parse_ree("x", &mut ta2).unwrap().into();
    assert_eq!(
        answer_once(&m, &gs, &q.compile(), Semantics::nulls())
            .unwrap()
            .into_tuples(),
        CertainAnswers::AllVacuously
    );
    assert_eq!(
        certain_answers_exact(&m, &q, &gs, ExactOptions::default()).unwrap(),
        CertainAnswers::AllVacuously
    );
}
