//! Prepared-template equivalence: `answer_bound` must serve answers
//! byte-identical to ad-hoc `answer` for **every** `Semantics` × `Mode`
//! at K ∈ {1, 4, Auto}, stay identical while churn deltas patch stripes,
//! and survive the seeded fault-injection soak. Alpha-equivalent ad-hoc
//! requests must transparently collapse onto one interned template.
//!
//! The fault plan ([`gde_core::faults`]) is process-global, so every test
//! in this binary serialises on one mutex — an armed plan would otherwise
//! leak injected panics into a neighbouring test's serves.

use std::sync::{Mutex, MutexGuard, Once};
use std::time::Duration;

use gde_core::faults::{self, FaultPlan};
use gde_core::{
    Answer, ExactOptions, MappingId, MappingService, Mode, Semantics, ServeError, ShardSpec,
    TemplateId,
};
use gde_datagraph::{GraphDelta, Label, NodeId};
use gde_dataquery::{canonicalize, DataQuery, PlanSkeleton};
use gde_workload::{param_family_scenario, param_request, ParamConfig, ParamScenario};

/// Serialises every test here: fault plans are process-global.
fn serial() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

/// Swallow injected-fault panic messages; forward everything else.
fn quiet_injected_panics() {
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let default = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let msg = info
                .payload()
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| info.payload().downcast_ref::<&str>().copied());
            if !msg.is_some_and(faults::is_injected) {
                default(info);
            }
        }));
    });
}

fn all_semantics() -> Vec<Semantics> {
    let mut out = Vec::new();
    for mode in [Mode::Tuples, Mode::Boolean] {
        out.push(Semantics::Nulls(mode));
        out.push(Semantics::LeastInformative(mode));
        out.push(Semantics::Exact(mode, ExactOptions::default()));
    }
    out
}

fn all_specs() -> [ShardSpec; 3] {
    [ShardSpec::Fixed(1), ShardSpec::Fixed(4), ShardSpec::Auto]
}

/// The family scenario plus everything the prepared path needs: one
/// exemplar request per variant, the shared skeleton, and the per-variant
/// binding vectors.
struct Family {
    ps: ParamScenario,
    exemplars: Vec<DataQuery>,
    skeleton: PlanSkeleton,
    bindings: Vec<Vec<Label>>,
}

fn family(variants: usize, nodes: usize, seed: u64) -> Family {
    let ps = param_family_scenario(&ParamConfig {
        variants,
        nodes,
        seed,
        ..ParamConfig::default()
    });
    let mut ta = ps.scenario.gsm.target_alphabet().clone();
    let exemplars: Vec<DataQuery> = ps
        .variants
        .iter()
        .enumerate()
        .map(|(i, name)| param_request(&mut ta, name, i as u64))
        .collect();
    let (skeleton, _) = canonicalize(&exemplars[0]);
    let bindings: Vec<Vec<Label>> = exemplars
        .iter()
        .map(|q| {
            let (s, b) = canonicalize(q);
            assert_eq!(s.hash(), skeleton.hash(), "one family, one skeleton");
            b.labels().to_vec()
        })
        .collect();
    Family {
        ps,
        exemplars,
        skeleton,
        bindings,
    }
}

fn register(fam: &Family, spec: ShardSpec) -> (MappingService, MappingId, TemplateId) {
    let svc = MappingService::new();
    let id = svc.register(fam.ps.scenario.gsm.clone(), fam.ps.scenario.source.clone());
    svc.set_shard_count(id, spec).expect("registered");
    let tpl = svc
        .register_template(id, &fam.skeleton)
        .expect("registered mapping interns the template");
    (svc, id, tpl)
}

/// One serve outcome per variant × semantics, errors included.
type Serves = Vec<Result<Answer, ServeError>>;

/// Ad-hoc and bound serves of every variant under every semantics,
/// errors included — an out-of-fragment rejection must be identical on
/// both paths too.
fn fingerprints(
    fam: &Family,
    svc: &MappingService,
    id: MappingId,
    tpl: TemplateId,
) -> (Serves, Serves) {
    let mut adhoc = Vec::new();
    let mut bound = Vec::new();
    for sem in all_semantics() {
        for (v, q) in fam.exemplars.iter().enumerate() {
            adhoc.push(svc.answer(id, &q.compile(), sem));
            bound.push(svc.answer_bound(id, tpl, &fam.bindings[v], sem));
        }
    }
    (adhoc, bound)
}

#[test]
fn bound_answers_identical_for_all_semantics_modes_and_shard_specs() {
    let _serial = serial();
    let fam = family(5, 48, 0xB0);
    let reference = MappingService::new();
    let rid = reference.register(fam.ps.scenario.gsm.clone(), fam.ps.scenario.source.clone());
    let rtpl = reference
        .register_template(rid, &fam.skeleton)
        .expect("interned");
    let (expected, expected_bound) = fingerprints(&fam, &reference, rid, rtpl);
    assert_eq!(
        expected, expected_bound,
        "unsharded bound == unsharded ad-hoc"
    );
    assert!(
        expected
            .iter()
            .any(|a| matches!(a, Ok(ans) if !ans.clone().into_pairs().is_empty())),
        "workload must produce real answers"
    );
    for spec in all_specs() {
        let (svc, id, tpl) = register(&fam, spec);
        let (adhoc, bound) = fingerprints(&fam, &svc, id, tpl);
        assert_eq!(adhoc, expected, "{spec:?} ad-hoc must match the reference");
        assert_eq!(bound, expected, "{spec:?} bound must match the reference");
        // warm pass: the second serve comes out of the sub-relation
        // cache stripes and must still be byte-identical
        let (adhoc, bound) = fingerprints(&fam, &svc, id, tpl);
        assert_eq!(adhoc, expected, "warm {spec:?} ad-hoc");
        assert_eq!(bound, expected, "warm {spec:?} bound");
    }
}

#[test]
fn bound_answers_survive_churn_deltas() {
    let _serial = serial();
    let fam = family(4, 40, 0xC4);
    let nodes = 40u32;
    // additive contact churn: the LAV-patchable shape the engine absorbs
    // without rebuilding cached solutions
    let deltas: Vec<GraphDelta> = (0..3)
        .map(|round| {
            let mut d = GraphDelta::new();
            for i in 0..4u32 {
                let u = (round * 11 + i * 7) % nodes;
                let v = (round * 17 + i * 13 + 1) % nodes;
                if u != v {
                    d = d.with_edge(NodeId(u), "contact", NodeId(v));
                }
            }
            d
        })
        .collect();
    let reference = MappingService::new();
    let rid = reference.register(fam.ps.scenario.gsm.clone(), fam.ps.scenario.source.clone());
    let rtpl = reference
        .register_template(rid, &fam.skeleton)
        .expect("interned");
    let sharded: Vec<_> = all_specs()
        .into_iter()
        .map(|spec| {
            let (svc, id, tpl) = register(&fam, spec);
            (spec, svc, id, tpl)
        })
        .collect();
    for delta in &deltas {
        // warm caches so the deltas patch rather than build cold
        let (expected, expected_bound) = fingerprints(&fam, &reference, rid, rtpl);
        assert_eq!(expected, expected_bound);
        for (spec, svc, id, tpl) in &sharded {
            let (adhoc, bound) = fingerprints(&fam, svc, *id, *tpl);
            assert_eq!(adhoc, expected, "pre-delta {spec:?}");
            assert_eq!(bound, expected, "pre-delta {spec:?} bound");
        }
        reference.apply_delta(rid, delta).expect("delta applies");
        for (_, svc, id, _) in &sharded {
            svc.apply_delta(*id, delta).expect("delta applies");
        }
    }
    let (expected, expected_bound) = fingerprints(&fam, &reference, rid, rtpl);
    assert_eq!(expected, expected_bound);
    for (spec, svc, id, tpl) in &sharded {
        let (adhoc, bound) = fingerprints(&fam, svc, *id, *tpl);
        assert_eq!(adhoc, expected, "post-churn {spec:?}");
        assert_eq!(bound, expected, "post-churn {spec:?} bound");
    }
}

#[test]
fn bound_answers_identical_under_fault_soak_seeds() {
    let _serial = serial();
    quiet_injected_panics();
    let fam = family(3, 36, 0xFA);
    let (svc, id, tpl) = register(&fam, ShardSpec::Fixed(3));
    let sems = [Semantics::nulls(), Semantics::nulls_boolean()];
    let mut reference = Vec::new();
    for sem in sems {
        for (v, q) in fam.exemplars.iter().enumerate() {
            let a = svc.answer(id, &q.compile(), sem).expect("fault-free serve");
            assert_eq!(
                svc.answer_bound(id, tpl, &fam.bindings[v], sem)
                    .expect("fault-free bound serve"),
                a
            );
            reference.push(a);
        }
    }
    let mut contained = 0u64;
    for seed in 0..16u64 {
        let armed = faults::arm(FaultPlan::seeded(seed).delay(Duration::from_micros(20)));
        let mut i = 0;
        for sem in sems {
            for (v, q) in fam.exemplars.iter().enumerate() {
                for r in [
                    svc.answer(id, &q.compile(), sem),
                    svc.answer_bound(id, tpl, &fam.bindings[v], sem),
                ] {
                    match r {
                        Ok(ans) => assert_eq!(ans, reference[i], "seed {seed} variant {v}"),
                        Err(ServeError::StripePanicked { message, .. }) => {
                            assert!(
                                faults::is_injected(&message),
                                "seed {seed}: contained a non-injected panic: {message}"
                            );
                            contained += 1;
                        }
                        Err(e) => panic!("seed {seed}: unexpected serve error: {e}"),
                    }
                }
                i += 1;
            }
        }
        drop(armed);
        // recovery: disarmed, both paths must serve the exact fault-free
        // answers again from whatever the faults left behind
        let mut i = 0;
        for sem in sems {
            for (v, q) in fam.exemplars.iter().enumerate() {
                assert_eq!(
                    svc.answer(id, &q.compile(), sem).expect("recovered"),
                    reference[i],
                    "seed {seed} recovery"
                );
                assert_eq!(
                    svc.answer_bound(id, tpl, &fam.bindings[v], sem)
                        .expect("recovered"),
                    reference[i],
                    "seed {seed} bound recovery"
                );
                i += 1;
            }
        }
    }
    assert!(contained > 0, "soak never saw a contained panic");
}

#[test]
fn alpha_equivalent_adhoc_requests_share_one_template() {
    let _serial = serial();
    let fam = family(3, 36, 0xA1);
    let svc = MappingService::new();
    let id = svc.register(fam.ps.scenario.gsm.clone(), fam.ps.scenario.source.clone());
    let mut ta = fam.ps.scenario.gsm.target_alphabet().clone();
    // first encounter interns the skeleton and pays the compile: no hit
    let q1 = param_request(&mut ta, &fam.ps.variants[0], 501).compile();
    let a1 = svc.answer(id, &q1, Semantics::nulls()).expect("serves");
    let s = svc.serving_stats(id).expect("registered");
    assert_eq!(s.template_hits, 0, "the first encounter pays the compile");
    // an alpha-renamed repeat and a re-bound sibling both hit it
    let q2 = param_request(&mut ta, &fam.ps.variants[0], 502).compile();
    assert_ne!(q1.plan_hash(), q2.plan_hash(), "raw plan hashes differ");
    assert_eq!(svc.answer(id, &q2, Semantics::nulls()).expect("serves"), a1);
    let q3 = param_request(&mut ta, &fam.ps.variants[1], 503).compile();
    svc.answer(id, &q3, Semantics::nulls()).expect("serves");
    let s = svc.serving_stats(id).expect("registered");
    assert_eq!(
        s.template_hits, 2,
        "alpha variants and re-bindings share the template"
    );
    assert!(
        s.compile_skipped_ns > 0,
        "skipped compile time is accounted"
    );
    // with canonicalisation off the same traffic shares nothing
    let off = MappingService::new();
    let oid = off.register(fam.ps.scenario.gsm.clone(), fam.ps.scenario.source.clone());
    off.set_canonicalisation(false);
    let b1 = off.answer(oid, &q1, Semantics::nulls()).expect("serves");
    assert_eq!(b1, a1, "canonicalisation must never change answers");
    assert_eq!(
        off.answer(oid, &q2, Semantics::nulls()).expect("serves"),
        a1
    );
    let s = off.serving_stats(oid).expect("registered");
    assert_eq!(s.template_hits, 0, "routing is off");
}
