//! Property tests for the §7/§8 canonical-solution constructions and
//! Proposition 1, over randomized scenarios.

use gde_core::translate::verify_prop1;
use gde_core::{least_informative_solution, universal_solution};
use gde_workload::{random_scenario, GraphConfig, ScenarioConfig};
use proptest::prelude::*;

fn scenario(seed: u64, nodes: usize) -> gde_workload::ExchangeScenario {
    random_scenario(&ScenarioConfig {
        graph: GraphConfig {
            nodes,
            edges: nodes * 2,
            labels: vec!["a".into(), "b".into()],
            value_pool: 3,
            seed,
        },
        target_labels: vec!["x".into(), "y".into()],
        max_word_len: 3,
        seed: seed.wrapping_mul(97) ^ 0xBEEF,
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn canonical_solutions_satisfy_the_mapping(seed in 0u64..10_000, nodes in 3usize..12) {
        let sc = scenario(seed, nodes);
        let uni = universal_solution(&sc.gsm, &sc.source).unwrap();
        prop_assert!(sc.gsm.is_solution(&sc.source, &uni.graph));
        let li = least_informative_solution(&sc.gsm, &sc.source).unwrap();
        prop_assert!(sc.gsm.is_solution(&sc.source, &li.graph));
        // same skeleton, different values
        prop_assert_eq!(uni.graph.node_count(), li.graph.node_count());
        prop_assert_eq!(uni.graph.edge_count(), li.graph.edge_count());
        prop_assert_eq!(uni.invented.len(), li.invented.len());
    }

    #[test]
    fn invented_nodes_are_null_vs_fresh(seed in 0u64..10_000) {
        let sc = scenario(seed, 8);
        let uni = universal_solution(&sc.gsm, &sc.source).unwrap();
        for &id in &uni.invented {
            prop_assert!(uni.graph.value(id).unwrap().is_null());
        }
        let li = least_informative_solution(&sc.gsm, &sc.source).unwrap();
        let src_vals = sc.source.value_set();
        let mut seen = Vec::new();
        for &id in &li.invented {
            let v = li.graph.value(id).unwrap().clone();
            prop_assert!(!v.is_null());
            prop_assert!(!src_vals.contains(&v), "fresh value collides with source");
            prop_assert!(!seen.contains(&v), "fresh values must be pairwise distinct");
            seen.push(v);
        }
    }

    #[test]
    fn dom_nodes_keep_source_values(seed in 0u64..10_000) {
        let sc = scenario(seed, 8);
        let uni = universal_solution(&sc.gsm, &sc.source).unwrap();
        for id in uni.dom_nodes() {
            prop_assert_eq!(uni.graph.value(id), sc.source.value(id));
        }
    }

    #[test]
    fn prop1_holds_on_random_scenarios(seed in 0u64..2_000) {
        // keep instances small: verify_prop1 runs a hom search
        let sc = scenario(seed, 5);
        prop_assert!(verify_prop1(&sc.gsm, &sc.source).unwrap());
    }
}
