//! Tests pinning down the *boundaries* between the paper's query languages —
//! the separations its results hinge on.

use gde_datagraph::{DataGraph, FxHashMap, NodeId, Value};
use gde_dataquery::{parse_ree, parse_rem, DataQuery};
use gde_gxpath::{eval_node, parse_node_expr};

/// REE and REM agree wherever both can express the query: endpoint tests.
#[test]
fn ree_rem_agree_on_endpoint_tests() {
    for seed in 0..10u64 {
        let mut g = gde_workload::random_data_graph(&gde_workload::GraphConfig {
            nodes: 8,
            edges: 14,
            value_pool: 3,
            seed,
            ..gde_workload::GraphConfig::default()
        });
        let cases = [
            ("(a b)=", "@x.(a b[x=])"),
            ("(a b)!=", "@x.(a b[x!=])"),
            ("((a|b)+)=", "@x.((a|b)+[x=])"),
            ("a (b)= a", "a @y.(b[y=]) a"),
        ];
        for (ree_src, rem_src) in cases {
            let ree = parse_ree(ree_src, g.alphabet_mut()).unwrap();
            let rem = parse_rem(rem_src, g.alphabet_mut()).unwrap();
            assert_eq!(
                ree.eval_pairs(&g),
                rem.eval_pairs(&g),
                "seed {seed}: {ree_src} vs {rem_src}"
            );
        }
    }
}

/// REM is strictly stronger: ↓x.(a[x≠])⁺ ("all values differ from the
/// first") distinguishes graphs that every REE of the shape we try cannot.
/// We verify the semantic behaviour REM gives and that the natural REE
/// approximations differ from it.
#[test]
fn rem_all_differ_not_ree_expressible_naively() {
    // chain: 1 -a-> 2 -a-> 1 (values); the REM query rejects (last = first)
    let mut g = DataGraph::new();
    g.add_node(NodeId(0), Value::int(1)).unwrap();
    g.add_node(NodeId(1), Value::int(2)).unwrap();
    g.add_node(NodeId(2), Value::int(1)).unwrap();
    g.add_edge_str(NodeId(0), "a", NodeId(1)).unwrap();
    g.add_edge_str(NodeId(1), "a", NodeId(2)).unwrap();
    let rem = parse_rem("@x.((a[x!=])+)", g.alphabet_mut()).unwrap();
    let rem_pairs = rem.eval_pairs(&g);
    assert!(rem_pairs.contains(&(NodeId(0), NodeId(1))));
    assert!(!rem_pairs.contains(&(NodeId(0), NodeId(2)))); // 1 reappears
                                                           // natural REE attempts either miss the first comparison or only test
                                                           // endpoints:
    let attempt1 = parse_ree("(a!=)+", g.alphabet_mut()).unwrap(); // consecutive ≠
    assert!(attempt1.eval_pairs(&g).contains(&(NodeId(0), NodeId(2))));
    let attempt2 = parse_ree("(a+)!=", g.alphabet_mut()).unwrap(); // endpoints ≠
    assert!(!attempt2.eval_pairs(&g).contains(&(NodeId(0), NodeId(2))));
    assert!(attempt2.eval_pairs(&g).contains(&(NodeId(0), NodeId(1))));
}

/// GXPath node expressions are NOT closed under homomorphisms — negation
/// sees what positive queries cannot. This is the §9 boundary: the
/// universal-solution method is unsound for GXPath.
#[test]
fn gxpath_not_hom_closed() {
    // G: single node 0 with no edges; G': 0 plus an a-edge to 1.
    // ϕ = ¬⟨a⟩ holds at 0 in G but not in G', although G maps into G'
    // by an identity homomorphism.
    let mut g = DataGraph::new();
    g.add_node(NodeId(0), Value::int(7)).unwrap();
    g.alphabet_mut().intern("a");
    let mut g2 = g.clone();
    g2.add_node(NodeId(1), Value::int(8)).unwrap();
    g2.add_edge_str(NodeId(0), "a", NodeId(1)).unwrap();

    let id_hom: FxHashMap<NodeId, NodeId> = g.node_ids().map(|v| (v, v)).collect();
    assert!(gde_datagraph::check_hom(
        &id_hom,
        &g,
        &g2,
        gde_datagraph::HomMode::Exact
    ));

    let phi = parse_node_expr("!<a>", g.alphabet_mut()).unwrap();
    assert_eq!(eval_node(&phi, &g), vec![NodeId(0)]);
    assert!(!eval_node(&phi, &g2).contains(&NodeId(0)));
}

/// Data RPQs (hom-closed) vs GXPath: the certain-answer engines accept the
/// former and there is no sound way to feed them the latter — enforced at
/// the type level (GXPath is simply not a `DataQuery` variant). This test
/// documents the boundary by exhaustiveness.
#[test]
fn data_query_variants_are_hom_closed_classes() {
    let mut al = gde_datagraph::Alphabet::new();
    let variants: Vec<DataQuery> = vec![
        gde_automata::parse_regex("a", &mut al).unwrap().into(),
        parse_ree("a=", &mut al).unwrap().into(),
        parse_rem("@x.(a[x=])", &mut al).unwrap().into(),
        DataQuery::PathTest(gde_dataquery::PathTest::Atom(al.label("a").unwrap())),
    ];
    for q in variants {
        assert!(q.is_hom_closed());
    }
}

/// Paths with tests sit strictly inside REE: conversion round-trips, and
/// the REE-only operators are genuinely rejected.
#[test]
fn pathtest_ree_boundary() {
    use gde_dataquery::PathTest;
    let mut al = gde_datagraph::Alphabet::new();
    for src in ["(a b)= c!=", "a", "((a (b c)=))!="] {
        let e = parse_ree(src, &mut al).unwrap();
        let p = PathTest::from_ree(&e).expect("iteration-free");
        assert_eq!(p.to_ree(), e);
    }
    for src in ["a+", "a | b", "eps", "(a|b)="] {
        let e = parse_ree(src, &mut al).unwrap();
        assert!(PathTest::from_ree(&e).is_none(), "{src} is not a path");
    }
}
