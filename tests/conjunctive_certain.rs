//! Conjunctive data RPQs through the certain-answer machinery: because
//! conjunction with existential projection preserves hom-closure, the
//! universal-solution engines accept [`ConjunctiveDataRpq`] unchanged —
//! the "conjunctive RPQ" route of §5, with data atoms.

use gde_automata::parse_regex;
use gde_core::{answer_once, certain_answers_exact, ExactOptions, Gsm, Semantics};
use gde_datagraph::{Alphabet, DataGraph, NodeId, Value};
use gde_dataquery::{parse_ree, CdAtom, ConjunctiveDataRpq, DataQuery};

/// Source: 0(v5) -a-> 1(v5) -a-> 2(v7); mapping (a, x y).
fn scenario() -> (Gsm, DataGraph) {
    let mut sa = Alphabet::from_labels(["a"]);
    let mut ta = Alphabet::from_labels(["x", "y"]);
    let mut m = Gsm::new(sa.clone(), ta.clone());
    m.add_rule(
        parse_regex("a", &mut sa).unwrap(),
        parse_regex("x y", &mut ta).unwrap(),
    );
    let mut gs = DataGraph::new();
    gs.add_node(NodeId(0), Value::int(5)).unwrap();
    gs.add_node(NodeId(1), Value::int(5)).unwrap();
    gs.add_node(NodeId(2), Value::int(7)).unwrap();
    gs.add_edge_str(NodeId(0), "a", NodeId(1)).unwrap();
    gs.add_edge_str(NodeId(1), "a", NodeId(2)).unwrap();
    (m, gs)
}

#[test]
fn conjunctive_certain_answers_via_nulls() {
    let (m, gs) = scenario();
    let mut ta = m.target_alphabet().clone();
    // Q(u, w) = u -(x y)=-> z ∧ z -(x y)≠-> w : equal-valued hop then
    // different-valued hop
    let eq: DataQuery = parse_ree("(x y)=", &mut ta).unwrap().into();
    let neq: DataQuery = parse_ree("(x y)!=", &mut ta).unwrap().into();
    let q: DataQuery = ConjunctiveDataRpq::new(
        (0, 1),
        vec![
            CdAtom {
                from: 0,
                query: eq,
                to: 9,
            },
            CdAtom {
                from: 9,
                query: neq,
                to: 1,
            },
        ],
    )
    .into();
    let ans = answer_once(&m, &gs, &q.compile(), Semantics::nulls())
        .unwrap()
        .into_pairs();
    // 0 =(5,5)= 1 then 1 ≠(5,7)≠ 2
    assert_eq!(ans, vec![(NodeId(0), NodeId(2))]);
}

#[test]
fn conjunctive_nulls_contained_in_exact() {
    let (m, gs) = scenario();
    let mut ta = m.target_alphabet().clone();
    let branch1: DataQuery = parse_ree("x y", &mut ta).unwrap().into();
    let branch2: DataQuery = parse_ree("(x y)=", &mut ta).unwrap().into();
    let q: DataQuery = ConjunctiveDataRpq::new(
        (0, 1),
        vec![
            CdAtom {
                from: 0,
                query: branch1,
                to: 1,
            },
            CdAtom {
                from: 0,
                query: branch2,
                to: 1,
            },
        ],
    )
    .into();
    let nulls = answer_once(&m, &gs, &q.compile(), Semantics::nulls())
        .unwrap()
        .into_pairs();
    let exact = certain_answers_exact(&m, &q, &gs, ExactOptions::default())
        .unwrap()
        .into_pairs();
    for p in &nulls {
        assert!(exact.contains(p), "2ⁿ ⊆ 2 broken at {p:?}");
    }
    assert_eq!(nulls, vec![(NodeId(0), NodeId(1))]);
}

#[test]
fn conjunctive_with_existential_middle_over_exchange() {
    let (m, gs) = scenario();
    let mut ta = m.target_alphabet().clone();
    // "two targets sharing an x-predecessor": y⁻ shapes are not expressible
    // in REE, but conjunction gets there: Q(u,w) = z -x-> u' … here use:
    // u -x-> z ∧ w -x-> z is not expressible either (x goes forward only);
    // instead test a diamond through words: u -(x y)-> z ∧ u -(x y)-> z
    // collapses; so take: u -(x y)-> z ∧ z -(x y)-> w (plain 2-hop join).
    let hop: DataQuery = parse_ree("x y", &mut ta).unwrap().into();
    let q: DataQuery = ConjunctiveDataRpq::new(
        (0, 2),
        vec![
            CdAtom {
                from: 0,
                query: hop.clone(),
                to: 1,
            },
            CdAtom {
                from: 1,
                query: hop,
                to: 2,
            },
        ],
    )
    .into();
    let ans = answer_once(&m, &gs, &q.compile(), Semantics::nulls())
        .unwrap()
        .into_pairs();
    assert_eq!(ans, vec![(NodeId(0), NodeId(2))]);
}
