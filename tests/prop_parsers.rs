//! Property tests: parser ↔ printer round trips for all four concrete
//! syntaxes (regex/RPQ, REE, REM, GXPath).

use gde_automata::{parse_regex, Regex};
use gde_datagraph::{Alphabet, Label};
use gde_dataquery::parser::{display_ree, display_rem, parse_ree, parse_rem};
use gde_dataquery::rem::VarCond;
use gde_dataquery::{Ree, Rem};
use proptest::prelude::*;

const LABELS: [&str; 3] = ["a", "b", "c"];

fn alphabet() -> Alphabet {
    Alphabet::from_labels(LABELS)
}

fn arb_label() -> impl Strategy<Value = Label> {
    (0u16..LABELS.len() as u16).prop_map(Label)
}

fn arb_regex() -> impl Strategy<Value = Regex> {
    let leaf = prop_oneof![arb_label().prop_map(Regex::Atom), Just(Regex::Epsilon),];
    leaf.prop_recursive(3, 24, 3, |inner| {
        prop_oneof![
            prop::collection::vec(inner.clone(), 1..3).prop_map(Regex::Concat),
            prop::collection::vec(inner.clone(), 1..3).prop_map(Regex::Union),
            inner.clone().prop_map(|e| Regex::Plus(Box::new(e))),
            inner.prop_map(|e| Regex::Star(Box::new(e))),
        ]
    })
}

fn arb_ree() -> impl Strategy<Value = Ree> {
    let leaf = prop_oneof![arb_label().prop_map(Ree::Atom), Just(Ree::Epsilon)];
    leaf.prop_recursive(3, 24, 3, |inner| {
        prop_oneof![
            prop::collection::vec(inner.clone(), 1..3).prop_map(Ree::Concat),
            prop::collection::vec(inner.clone(), 1..3).prop_map(Ree::Union),
            inner.clone().prop_map(|e| Ree::Plus(Box::new(e))),
            inner.clone().prop_map(|e| Ree::Star(Box::new(e))),
            inner.clone().prop_map(|e| Ree::Eq(Box::new(e))),
            inner.prop_map(|e| Ree::Neq(Box::new(e))),
        ]
    })
}

fn arb_cond() -> impl Strategy<Value = VarCond> {
    let leaf = prop_oneof![
        "[xyz]".prop_map(VarCond::Eq),
        "[xyz]".prop_map(VarCond::Neq),
    ];
    leaf.prop_recursive(2, 8, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| VarCond::and(a, b)),
            (inner.clone(), inner).prop_map(|(a, b)| VarCond::or(a, b)),
        ]
    })
}

fn arb_rem() -> impl Strategy<Value = Rem> {
    let leaf = prop_oneof![arb_label().prop_map(Rem::Atom), Just(Rem::Epsilon)];
    leaf.prop_recursive(3, 24, 3, |inner| {
        prop_oneof![
            prop::collection::vec(inner.clone(), 1..3).prop_map(Rem::Concat),
            prop::collection::vec(inner.clone(), 1..3).prop_map(Rem::Union),
            inner.clone().prop_map(|e| Rem::Plus(Box::new(e))),
            inner.clone().prop_map(|e| Rem::Star(Box::new(e))),
            ("[xyz]", inner.clone()).prop_map(|(v, e)| Rem::Bind(vec![v], Box::new(e))),
            (inner, arb_cond()).prop_map(|(e, c)| Rem::Test(Box::new(e), c)),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn regex_roundtrip(e in arb_regex()) {
        let mut al = alphabet();
        let printed = e.display(&al);
        let back = parse_regex(&printed, &mut al)
            .unwrap_or_else(|err| panic!("printed {printed:?} failed: {err}"));
        // display-normalized equality (printer flattens some nestings)
        prop_assert_eq!(back.display(&al), printed);
    }

    #[test]
    fn ree_roundtrip(e in arb_ree()) {
        let mut al = alphabet();
        let printed = display_ree(&e, &al);
        let back = parse_ree(&printed, &mut al)
            .unwrap_or_else(|err| panic!("printed {printed:?} failed: {err}"));
        prop_assert_eq!(display_ree(&back, &al), printed);
    }

    #[test]
    fn rem_roundtrip(e in arb_rem()) {
        let mut al = alphabet();
        let printed = display_rem(&e, &al);
        let back = parse_rem(&printed, &mut al)
            .unwrap_or_else(|err| panic!("printed {printed:?} failed: {err}"));
        prop_assert_eq!(display_rem(&back, &al), printed);
    }

    /// Semantic roundtrip: reparsed REEs answer identically on a graph.
    #[test]
    fn ree_roundtrip_semantics(e in arb_ree(), seed in 0u64..500) {
        let mut al = alphabet();
        let printed = display_ree(&e, &al);
        let back = parse_ree(&printed, &mut al).unwrap();
        let g = gde_workload::random_data_graph(&gde_workload::GraphConfig {
            nodes: 6,
            edges: 10,
            labels: LABELS.iter().map(|s| s.to_string()).collect(),
            value_pool: 2,
            seed,
        });
        prop_assert_eq!(e.eval_pairs(&g), back.eval_pairs(&g));
    }
}
