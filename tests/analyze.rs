//! Static-analyzer edge cases and the engine guarantees built on top of
//! it: workload-driven rule pruning must be invisible in the answers
//! (byte-identical at every shard count), must actually shrink the
//! resident solution, and statically-empty queries must serve O(1)
//! without touching a single stripe.

use gde_automata::{parse_regex, Regex};
use gde_core::{
    analyze_mapping, pruned_gsm, Answer, Gsm, MappingFacts, MappingService, Semantics, ShardSpec,
    WorkloadProfile,
};
use gde_datagraph::{Alphabet, DataGraph, NodeId, Value};
use gde_dataquery::{CompiledQuery, DataQuery};

fn mapping(rules: &[(&str, &str)]) -> Gsm {
    let mut sa = Alphabet::from_labels(["a", "b", "c"]);
    let mut ta = Alphabet::from_labels(["x", "y", "z"]);
    let parsed: Vec<(Regex, Regex)> = rules
        .iter()
        .map(|(s, t)| {
            (
                parse_regex(s, &mut sa).unwrap(),
                parse_regex(t, &mut ta).unwrap(),
            )
        })
        .collect();
    let mut m = Gsm::new(sa, ta);
    for (s, t) in parsed {
        m.add_rule(s, t);
    }
    m
}

fn query(m: &Gsm, text: &str) -> CompiledQuery {
    let mut ta = m.target_alphabet().clone();
    DataQuery::Rpq(parse_regex(text, &mut ta).unwrap()).compile()
}

/// A chain source alternating `a` and `b` edges: plenty of material for
/// both an `x`-producing and a `y`-producing rule.
fn chain_source(n: u32) -> DataGraph {
    let mut g = DataGraph::new();
    for i in 0..n {
        g.add_node(NodeId(i), Value::int(i as i64 % 5)).unwrap();
    }
    for i in 0..n - 1 {
        let label = if i % 2 == 0 { "a" } else { "b" };
        g.add_edge_str(NodeId(i), label, NodeId(i + 1)).unwrap();
    }
    g
}

#[test]
fn empty_mapping_yields_empty_verdicts() {
    let m = mapping(&[]);
    let f = MappingFacts::of(&m);
    assert!(f.relational && f.always_solvable);
    assert!(f.produced.is_empty());
    let q = query(&m, "x y");
    let report = analyze_mapping(&m, &[&q], None);
    assert_eq!(report.rule_count, 0);
    assert!(report.dead_rules.is_empty() && report.subsumed_rules.is_empty());
    // a mapping that produces nothing makes every non-reflexive query
    // statically empty
    assert!(report.verdicts[0].statically_empty);
}

#[test]
fn all_rules_dead_under_disjoint_workload() {
    let m = mapping(&[("a", "x"), ("b", "y")]);
    let q = query(&m, "z");
    let report = analyze_mapping(&m, &[&q], None);
    assert_eq!(report.dead_rules, vec![0, 1]);
    assert_eq!(report.live_rules(), 0);
    let profile = WorkloadProfile::from_queries([&q]);
    let pruned = pruned_gsm(&m, &profile).expect("prunable");
    assert!(pruned.rules().is_empty());
}

#[test]
fn duplicate_rules_subsume_down_to_one() {
    let m = mapping(&[("a", "x"), ("a", "x"), ("a", "x")]);
    let report = analyze_mapping(&m, &[], None);
    // mutual-equivalence classes keep the lowest index
    assert_eq!(report.subsumed_rules, vec![(1, 0), (2, 0)]);
    let pruned = pruned_gsm(&m, &WorkloadProfile::new()).expect("prunable");
    assert_eq!(pruned.rules().len(), 1);
}

#[test]
fn query_over_unproduced_labels_serves_o1() {
    let m = mapping(&[("a", "x"), ("b", "y")]);
    let gs = chain_source(40);
    let svc = MappingService::new();
    let id = svc.register(m.clone(), gs);
    svc.prepare(id, Semantics::nulls()).unwrap();
    let dead_q = query(&m, "z");
    let before = svc.serving_stats(id).unwrap();
    let a = svc.answer(id, &dead_q, Semantics::nulls()).unwrap();
    let b = svc.answer(id, &dead_q, Semantics::nulls_boolean()).unwrap();
    let after = svc.serving_stats(id).unwrap();
    assert_eq!(a.into_pairs(), vec![]);
    assert_eq!(b, Answer::Boolean(false));
    // the verdict short-circuits before any stripe evaluation
    assert_eq!(after.static_empty - before.static_empty, 2);
    assert_eq!(after.tuple_evals, before.tuple_evals);
    assert_eq!(after.boolean_evals, before.boolean_evals);
}

#[test]
fn static_empty_short_circuits_in_batches_too() {
    let m = mapping(&[("a", "x"), ("b", "y")]);
    let svc = MappingService::new();
    let id = svc.register(m.clone(), chain_source(40));
    svc.set_shard_count(id, 3).unwrap();
    let live = query(&m, "x y*");
    let dead = query(&m, "z");
    let batch = vec![live.clone(), dead.clone(), live.clone()];
    let before = svc.serving_stats(id).unwrap();
    let answers = svc.answer_batch(id, &batch, Semantics::nulls());
    let after = svc.serving_stats(id).unwrap();
    assert_eq!(answers.len(), 3);
    assert_eq!(
        answers[1].as_ref().unwrap().clone().into_pairs(),
        vec![],
        "statically-empty member answers empty"
    );
    assert_eq!(
        answers[0].as_ref().unwrap(),
        answers[2].as_ref().unwrap(),
        "live members unaffected"
    );
    assert_eq!(after.static_empty - before.static_empty, 1);
}

/// The acceptance scenario: a workload with dead and subsumed rules must
/// shrink the resident solution while staying byte-identical at every
/// shard count, pruning on or off.
#[test]
fn pruning_is_invisible_and_shrinks_the_solution() {
    let rules: &[(&str, &str)] = &[
        ("a", "x"),
        ("a", "x"),     // subsumed duplicate of rule 0
        ("a|b", "x"),   // subsumes both: larger source, same target
        ("b", "y y y"), // dead under an x-only workload, and expensive
    ];
    let gs = chain_source(60);
    let workload = [
        query(&mapping(rules), "x"),
        query(&mapping(rules), "x x"),
        query(&mapping(rules), "x+"),
    ];

    // reference: pruning globally off
    let off = MappingService::new();
    off.set_rule_pruning(false);
    let off_id = off.register(mapping(rules), gs.clone());
    off.register_queries(off_id, &workload).unwrap();
    let off_bytes = off
        .solution(off_id, Semantics::nulls())
        .unwrap()
        .approx_bytes();

    for spec in [ShardSpec::Fixed(1), ShardSpec::Fixed(4), ShardSpec::Auto] {
        let on = MappingService::new();
        let id = on.register(mapping(rules), gs.clone());
        on.register_queries(id, &workload).unwrap();
        on.set_shard_count(id, spec).unwrap();
        // the serve mapping really did lose the dead + subsumed rules
        let serve = on.serve_gsm(id).unwrap();
        assert!(
            serve.rules().len() < rules.len(),
            "pruning dropped rules at {spec:?}"
        );
        let on_bytes = on.solution(id, Semantics::nulls()).unwrap().approx_bytes();
        assert!(
            on_bytes < off_bytes,
            "pruned solution is smaller ({on_bytes} < {off_bytes})"
        );
        for q in &workload {
            for sem in [Semantics::nulls(), Semantics::nulls_boolean()] {
                assert_eq!(
                    on.answer(id, q, sem).unwrap(),
                    off.answer(off_id, q, sem).unwrap(),
                    "byte-identical at {spec:?}"
                );
            }
        }
    }
}

/// Serving a query the registered workload doesn't cover must transparently
/// re-expand the pruned mapping — correctness never depends on the
/// workload registration being complete.
#[test]
fn uncovered_query_reexpands_the_pruned_mapping() {
    let rules: &[(&str, &str)] = &[("a", "x"), ("b", "y")];
    let gs = chain_source(30);

    let off = MappingService::new();
    off.set_rule_pruning(false);
    let off_id = off.register(mapping(rules), gs.clone());

    let on = MappingService::new();
    let id = on.register(mapping(rules), gs);
    let x_only = [query(&mapping(rules), "x")];
    on.register_queries(id, &x_only).unwrap();
    assert_eq!(
        on.serve_gsm(id).unwrap().rules().len(),
        1,
        "y-rule pruned under the x-only workload"
    );
    // now serve a y query that was never registered
    let y_q = query(&mapping(rules), "y");
    let got = on.answer(id, &y_q, Semantics::nulls()).unwrap();
    let want = off.answer(off_id, &y_q, Semantics::nulls()).unwrap();
    assert_eq!(got, want, "auto-extension keeps answers exact");
    assert_eq!(
        on.serve_gsm(id).unwrap().rules().len(),
        2,
        "workload grew and the mapping re-expanded"
    );
}

/// The service-level analyze() report agrees with the standalone analyzer
/// and carries cardinality estimates once a snapshot is resident.
#[test]
fn service_analyze_reports_with_estimates() {
    let rules: &[(&str, &str)] = &[("a", "x"), ("a", "x"), ("b", "y")];
    let m = mapping(rules);
    let svc = MappingService::new();
    let id = svc.register(m.clone(), chain_source(50));
    let qs = vec![query(&m, "x*"), query(&m, "z")];
    let report = svc.analyze(id, &qs).unwrap();
    assert_eq!(report.rule_count, 3);
    assert_eq!(report.subsumed_rules, vec![(1, 0)]);
    assert_eq!(report.statically_empty(), 1);
    assert!(report.verdicts[1].statically_empty);
    // no solution built yet ⇒ no snapshot ⇒ no estimates
    assert!(report.verdicts[0].estimate.is_none());
    svc.prepare(id, Semantics::nulls()).unwrap();
    let report = svc.analyze(id, &qs).unwrap();
    let est = report.verdicts[0]
        .estimate
        .expect("estimate from the resident snapshot");
    // x* answers at least every reflexive pair, so the prior is nonzero
    assert!(est.pairs > 0 && est.bytes > 0);
}
