//! Property tests for Proposition 6: data RPQs are closed under
//! homomorphisms on data graphs (including null-absorbing ones).
//!
//! Strategy: generate a random data graph, quotient it by merging nodes
//! with equal values (a legitimate exact homomorphism), and check that
//! every answer of the original maps to an answer of the image.

use gde_datagraph::{apply_hom, check_hom, DataGraph, FxHashMap, HomMode, NodeId, Value};
use gde_dataquery::{parse_ree, parse_rem, DataQuery};
use gde_workload::{random_data_graph, GraphConfig};
use proptest::prelude::*;

/// Build a merge map: nodes with equal values are grouped; each group is
/// collapsed to its smallest id with probability controlled by `mask`.
fn merge_map(g: &DataGraph, mask: u64) -> FxHashMap<NodeId, NodeId> {
    let mut by_value: FxHashMap<Value, Vec<NodeId>> = FxHashMap::default();
    for (id, v) in g.nodes() {
        by_value.entry(v.clone()).or_default().push(id);
    }
    let mut h: FxHashMap<NodeId, NodeId> = FxHashMap::default();
    for (_, mut group) in by_value {
        group.sort();
        let rep = group[0];
        for (k, id) in group.into_iter().enumerate() {
            // merge roughly half the group members into the representative
            if mask >> (k % 64) & 1 == 1 {
                h.insert(id, rep);
            } else {
                h.insert(id, id);
            }
        }
    }
    h
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn ree_answers_preserved_under_quotients(seed in 0u64..5000, mask in any::<u64>()) {
        let mut g = random_data_graph(&GraphConfig {
            nodes: 10,
            edges: 16,
            value_pool: 3,
            seed,
            ..GraphConfig::default()
        });
        let h = merge_map(&g, mask);
        let img = apply_hom(&g, &h, HomMode::Exact).expect("equal-value merge is exact");
        prop_assert!(check_hom(&h, &g, &img, HomMode::Exact));
        for qsrc in ["a", "(a b)=", "((a|b)+)=", "(a b)!=", "(a|b)* (a)= (a|b)*"] {
            let q: DataQuery = parse_ree(qsrc, g.alphabet_mut()).unwrap().into();
            for (u, v) in q.eval_pairs(&g) {
                prop_assert!(
                    q.matches(&img, h[&u], h[&v]),
                    "hom closure violated: {qsrc} at ({u}, {v}) → ({}, {})",
                    h[&u], h[&v]
                );
            }
        }
    }

    #[test]
    fn rem_answers_preserved_under_quotients(seed in 0u64..5000, mask in any::<u64>()) {
        let mut g = random_data_graph(&GraphConfig {
            nodes: 8,
            edges: 12,
            value_pool: 3,
            seed,
            ..GraphConfig::default()
        });
        let h = merge_map(&g, mask);
        let img = apply_hom(&g, &h, HomMode::Exact).expect("equal-value merge is exact");
        for qsrc in ["@x.((a|b)+[x=])", "@x.(a[x!=])", "@x.(a @y.(b[y= | x=]))"] {
            let q: DataQuery = parse_rem(qsrc, g.alphabet_mut()).unwrap().into();
            for (u, v) in q.eval_pairs(&g) {
                prop_assert!(
                    q.matches(&img, h[&u], h[&v]),
                    "REM hom closure violated: {qsrc} at ({u}, {v})"
                );
            }
        }
    }

    /// Null-absorbing variant (§7): turning some values into nulls gives a
    /// graph that maps into the original by a null-absorbing hom; answers on
    /// the nulled graph must persist in the original.
    #[test]
    fn null_absorbing_closure(seed in 0u64..5000, null_mask in any::<u64>()) {
        let mut g = random_data_graph(&GraphConfig {
            nodes: 10,
            edges: 16,
            value_pool: 3,
            seed,
            ..GraphConfig::default()
        });
        let mut nulled = g.clone();
        for (k, id) in g.node_ids().enumerate() {
            if null_mask >> (k % 64) & 1 == 1 {
                nulled.set_value(id, Value::Null).unwrap();
            }
        }
        let h: FxHashMap<NodeId, NodeId> = g.node_ids().map(|v| (v, v)).collect();
        prop_assert!(check_hom(&h, &nulled, &g, HomMode::NullAbsorbing));
        for qsrc in ["(a b)=", "((a|b)+)=", "(a)!="] {
            let q: DataQuery = parse_ree(qsrc, g.alphabet_mut()).unwrap().into();
            for (u, v) in q.eval_pairs(&nulled) {
                prop_assert!(
                    q.matches(&g, u, v),
                    "null-absorbing closure violated: {qsrc} at ({u}, {v})"
                );
            }
        }
    }
}
