//! Property tests for the hardness gadgets: the reductions must agree with
//! ground truth on randomized instances.

use gde_core::{certain_boolean_exact, ExactOptions};
use gde_reductions::{PcpInstance, Thm1Gadget, ThreeColGadget};
use gde_workload::graphs::{planted_three_colourable, random_simple_edges};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Proposition 3 on random 4-vertex graphs: the Boolean certain answer
    /// equals non-3-colourability, always.
    #[test]
    fn threecol_gadget_matches_bruteforce(seed in 0u64..10_000, p in 0.2f64..0.9) {
        let edges = random_simple_edges(4, p, seed);
        let g = ThreeColGadget::build(4, &edges);
        let colourable = g.brute_force_colouring().is_some();
        let certain = certain_boolean_exact(
            &g.gsm,
            &g.query,
            &g.source,
            ExactOptions { max_invented: 16, max_patterns: 10_000_000 },
        ).unwrap();
        prop_assert_eq!(certain, !colourable, "edges: {:?}", edges);
    }

    /// Planted colourable instances are never "certain".
    #[test]
    fn threecol_planted_never_certain(seed in 0u64..10_000) {
        let edges = planted_three_colourable(4, 4, seed);
        let g = ThreeColGadget::build(4, &edges);
        prop_assert!(g.brute_force_colouring().is_some());
        let certain = certain_boolean_exact(
            &g.gsm,
            &g.query,
            &g.source,
            ExactOptions { max_invented: 16, max_patterns: 10_000_000 },
        ).unwrap();
        prop_assert!(!certain);
    }

    /// The canonical coloured target defeats the query exactly for proper
    /// colourings.
    #[test]
    fn threecol_target_vs_colouring(seed in 0u64..10_000, c0 in 0u8..3, c1 in 0u8..3, c2 in 0u8..3) {
        let edges = random_simple_edges(3, 0.7, seed);
        let g = ThreeColGadget::build(3, &edges);
        let colours = [c0, c1, c2];
        let gt = g.coloured_target(&colours);
        prop_assert!(g.gsm.is_solution(&g.source, &gt));
        let fires = g.query.holds_somewhere(&gt);
        prop_assert_eq!(fires, !g.is_proper(&colours), "colours {:?}", colours);
    }

    /// Theorem 1: whenever the bounded PCP solver finds a solution, the
    /// gadget produces a mapping solution that defeats the error query; the
    /// lazy solution is always caught.
    #[test]
    fn thm1_gadget_invariants(seed in 0u64..2_000) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
        let letters = ["a", "b", "ab", "ba", "aa", "bb"];
        let tiles: Vec<(String, String)> = (0..rng.gen_range(1..=3usize))
            .map(|_| {
                (
                    letters[rng.gen_range(0..letters.len())].to_string(),
                    letters[rng.gen_range(0..letters.len())].to_string(),
                )
            })
            .collect();
        let inst = PcpInstance::new(&tiles);
        let gadget = Thm1Gadget::build(inst.clone());
        // lazy target: always a solution, always caught
        let lazy = gadget.lazy_target();
        prop_assert!(gadget.gsm.is_solution(&gadget.source, &lazy));
        prop_assert!(gadget.error_fires(&lazy));
        // solvable ⇒ witness works
        if let Some(sol) = inst.solve_bounded(6) {
            prop_assert!(gadget.witnesses_not_certain(&sol), "tiles {:?} sol {:?}", tiles, sol);
        }
    }
}
