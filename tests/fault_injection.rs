//! Seeded fault-injection soak and recovery-invariant tests for the
//! serving engine.
//!
//! The fault plan ([`gde_core::faults`]) is process-global, so every test
//! in this binary serialises on one mutex — an armed plan would otherwise
//! leak injected panics into a neighbouring test's serves. Injected panic
//! messages are swallowed by a quiet hook (they are deliberate and would
//! flood the output); anything else still prints through the default
//! hook, so a *real* bug surfacing mid-soak stays visible.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, Once};
use std::time::{Duration, Instant};

use gde_core::faults::{self, FaultPlan, FaultSite};
use gde_core::{Answer, MappingId, MappingService, Semantics, ServeError, ServeOptions, ShardSpec};
use gde_dataquery::CompiledQuery;
use gde_workload::{social_serving_scenario, ServingScenario, SocialConfig};

/// Serialises every test here: fault plans and the panic hook are
/// process-global.
fn serial() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

/// Swallow injected-fault panic messages; forward everything else.
fn quiet_injected_panics() {
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let default = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let msg = info
                .payload()
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| info.payload().downcast_ref::<&str>().copied());
            if !msg.is_some_and(faults::is_injected) {
                default(info);
            }
        }));
    });
}

fn scenario(seed: u64) -> ServingScenario {
    social_serving_scenario(&SocialConfig {
        persons: 14,
        knows_per_person: 3,
        posts: 10,
        cities: 3,
        seed,
    })
}

fn compiled_batch(sv: &ServingScenario) -> Vec<CompiledQuery> {
    sv.queries.iter().map(|(_, q)| q.compile()).collect()
}

/// Answer every query under tuple and Boolean nulls semantics — the
/// byte-level fingerprint recovery is checked against.
fn fingerprint(svc: &MappingService, id: MappingId, qs: &[CompiledQuery]) -> Vec<Answer> {
    let mut out = Vec::new();
    for q in qs {
        out.push(svc.answer(id, q, Semantics::nulls()).unwrap());
        out.push(svc.answer(id, q, Semantics::nulls_boolean()).unwrap());
    }
    out
}

/// The soak: across ≥32 seeds (plus an optional `GDE_FAULT_SEED` smoke
/// seed from the environment), drive a sharded service through batch and
/// single serves while panics and delays fire at every injection site.
/// The process must never abort, every error must be a typed contained
/// one, and after each seed disarms the same service must return
/// byte-identical answers with a consistent cache charge.
#[test]
fn seeded_soak_never_aborts_and_recovers_byte_identical() {
    let _serial = serial();
    quiet_injected_panics();
    let sv = scenario(0xFA);
    let qs: Vec<CompiledQuery> = compiled_batch(&sv).into_iter().take(6).collect();
    let svc = MappingService::new();
    let id = svc.register(sv.scenario.gsm.clone(), sv.scenario.source.clone());
    svc.set_shard_count(id, 3).unwrap();
    let reference = fingerprint(&svc, id, &qs);
    let ref_batch: Vec<Answer> = svc
        .answer_batch(id, &qs, Semantics::nulls())
        .into_iter()
        .map(|r| r.unwrap())
        .collect();
    let baseline_bytes = svc.cached_bytes();
    assert!(baseline_bytes > 0);

    let mut seeds: Vec<u64> = (0..32).collect();
    if let Ok(s) = std::env::var("GDE_FAULT_SEED") {
        let s: u64 = s.parse().expect("GDE_FAULT_SEED must be a u64");
        eprintln!("fault soak: extra smoke seed {s}");
        seeds.push(s);
    }

    let (mut contained, mut total_hits) = (0u64, 0u64);
    for seed in seeds {
        let armed = faults::arm(FaultPlan::seeded(seed).delay(Duration::from_micros(20)));
        for (i, r) in svc
            .answer_batch(id, &qs, Semantics::nulls())
            .into_iter()
            .enumerate()
        {
            match r {
                Ok(ans) => assert_eq!(ans, ref_batch[i], "seed {seed} query {i}"),
                Err(ServeError::StripePanicked { message, .. }) => {
                    assert!(
                        faults::is_injected(&message),
                        "seed {seed}: contained a non-injected panic: {message}"
                    );
                    contained += 1;
                }
                Err(e) => panic!("seed {seed}: unexpected serve error: {e}"),
            }
        }
        for (qi, q) in qs.iter().enumerate() {
            for sem in [Semantics::nulls(), Semantics::nulls_boolean()] {
                match svc.answer(id, q, sem) {
                    Ok(ans) => assert_eq!(ans, reference[qi * 2 + sem_index(sem)]),
                    Err(ServeError::StripePanicked { message, .. }) => {
                        assert!(faults::is_injected(&message), "seed {seed}: {message}");
                        contained += 1;
                    }
                    Err(e) => panic!("seed {seed}: unexpected serve error: {e}"),
                }
            }
        }
        total_hits += FaultSite::ALL.iter().map(|&s| faults::hits(s)).sum::<u64>();
        drop(armed);
        // recovery: disarmed, the same service must serve the exact
        // fault-free answers again from whatever the faults left behind
        assert_eq!(fingerprint(&svc, id, &qs), reference, "seed {seed}");
        // ... and the cache charge must settle back to the fault-free
        // baseline: a quarantine that leaked a phantom charge would
        // drift these bytes upward seed over seed
        assert_eq!(svc.cached_bytes(), baseline_bytes, "seed {seed}");
    }
    assert!(contained > 0, "soak never saw a contained panic");
    assert!(total_hits > 0, "injection points were never exercised");
    let stats = svc.serving_stats(id).unwrap();
    assert!(stats.worker_panics > 0, "no worker panic was counted");
    assert!(stats.retries > 0, "no quarantine retry was counted");
}

fn sem_index(sem: Semantics) -> usize {
    usize::from(sem == Semantics::nulls_boolean())
}

/// A panicking stripe quarantines only its own mapping: a sibling
/// mapping's cached solution, counters and answers are untouched.
#[test]
fn panicking_stripe_quarantines_only_that_mapping() {
    let _serial = serial();
    quiet_injected_panics();
    let (sva, svb) = (scenario(0xA1), scenario(0xB2));
    let (qa, qb) = (sva.queries[0].1.compile(), svb.queries[0].1.compile());
    let svc = MappingService::new();
    let ida = svc.register(sva.scenario.gsm.clone(), sva.scenario.source.clone());
    let idb = svc.register(svb.scenario.gsm.clone(), svb.scenario.source.clone());
    svc.set_shard_count(ida, 2).unwrap();
    svc.set_shard_count(idb, 2).unwrap();
    let ref_a = svc.answer(ida, &qa, Semantics::nulls()).unwrap();
    let ref_b = svc.answer(idb, &qb, Semantics::nulls()).unwrap();
    assert!(svc.is_cached(ida, Semantics::nulls()));
    assert!(svc.is_cached(idb, Semantics::nulls()));

    // every hit panics: the warm serve's stripe panics, the quarantine
    // retry's rebuild panics at refreeze, and the serve surfaces the
    // typed error after both contained attempts
    let armed = faults::arm(FaultPlan::seeded(9).panic_one_in(1).delay_one_in(0));
    match svc.answer(ida, &qa, Semantics::nulls()) {
        Err(ServeError::StripePanicked { message, .. }) => {
            assert!(faults::is_injected(&message), "{message}")
        }
        other => panic!("expected StripePanicked, got {other:?}"),
    }
    drop(armed);

    // only mapping A was quarantined
    assert!(!svc.is_cached(ida, Semantics::nulls()), "A is quarantined");
    assert!(svc.is_cached(idb, Semantics::nulls()), "B is untouched");
    let sa = svc.serving_stats(ida).unwrap();
    assert!(sa.worker_panics >= 1);
    assert!(sa.retries >= 1);
    let sb = svc.serving_stats(idb).unwrap();
    assert_eq!(sb.worker_panics, 0);
    assert_eq!(sb.retries, 0);
    // both recover to byte-identical answers
    assert_eq!(svc.answer(ida, &qa, Semantics::nulls()).unwrap(), ref_a);
    assert_eq!(svc.answer(idb, &qb, Semantics::nulls()).unwrap(), ref_b);
}

/// Cancelling mid-batch leaves every cache consistent: a retry of the
/// same batch is byte-identical, at K = 1, K = 4 and under `Auto`.
#[test]
fn cancel_mid_batch_then_retry_is_byte_identical() {
    let _serial = serial();
    quiet_injected_panics();
    let sv = scenario(0xC3);
    let qs = compiled_batch(&sv);
    for spec in [ShardSpec::Fixed(1), ShardSpec::Fixed(4), ShardSpec::Auto] {
        let svc = MappingService::new();
        let id = svc.register(sv.scenario.gsm.clone(), sv.scenario.source.clone());
        svc.set_shard_count(id, spec).unwrap();
        let reference: Vec<Answer> = svc
            .answer_batch(id, &qs, Semantics::nulls())
            .into_iter()
            .map(|r| r.unwrap())
            .collect();

        // raised before the call: refused at the door, every query gets
        // the typed cancel error and the rejected counter moves
        let cancel = Arc::new(AtomicBool::new(true));
        let opts = ServeOptions::new().with_cancel(cancel);
        for r in svc.answer_batch_with(id, &qs, Semantics::nulls(), &opts) {
            assert!(matches!(r, Err(ServeError::Cancelled { .. })), "{spec:?}");
        }
        assert!(svc.serving_stats(id).unwrap().rejected >= qs.len() as u64);

        // raised from another thread mid-flight: each query either
        // finished with the exact reference answer or was cancelled
        let cancel = Arc::new(AtomicBool::new(false));
        let opts = ServeOptions::new().with_cancel(cancel.clone());
        let flipper = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_micros(150));
            cancel.store(true, Ordering::SeqCst);
        });
        let midway = svc.answer_batch_with(id, &qs, Semantics::nulls(), &opts);
        flipper.join().unwrap();
        for (i, r) in midway.into_iter().enumerate() {
            match r {
                Ok(ans) => assert_eq!(ans, reference[i], "{spec:?} query {i}"),
                Err(ServeError::Cancelled { .. }) => {}
                Err(e) => panic!("{spec:?}: unexpected serve error: {e}"),
            }
        }
        // the retry must reproduce the reference bytes exactly
        let retry: Vec<Answer> = svc
            .answer_batch(id, &qs, Semantics::nulls())
            .into_iter()
            .map(|r| r.unwrap())
            .collect();
        assert_eq!(retry, reference, "{spec:?}");
    }
}

/// Deadline expiry — at the door and mid-serve — never leaves a stale
/// generation servable: the next unbounded serve is byte-identical.
#[test]
fn deadline_expiry_never_leaves_stale_answers() {
    let _serial = serial();
    quiet_injected_panics();
    let sv = scenario(0xD4);
    let q = sv.queries[0].1.compile();
    let svc = MappingService::new();
    let id = svc.register(sv.scenario.gsm.clone(), sv.scenario.source.clone());
    svc.set_shard_count(id, 3).unwrap();
    let reference = svc.answer(id, &q, Semantics::nulls()).unwrap();

    // already expired: refused at the door with zero completed stripes
    let opts = ServeOptions::new().with_deadline(Instant::now());
    match svc.answer_with(id, &q, Semantics::nulls(), &opts) {
        Err(ServeError::DeadlineExceeded {
            completed_stripes, ..
        }) => assert_eq!(completed_stripes, 0),
        other => panic!("expected DeadlineExceeded, got {other:?}"),
    }
    assert!(svc.serving_stats(id).unwrap().rejected >= 1);

    // a spread of horizons that may expire mid-serve: success must be
    // exact, expiry must be typed, and the follow-up unbounded serve must
    // always return the reference bytes
    for micros in [1u64, 50, 200, 1000] {
        let opts =
            ServeOptions::new().with_deadline(Instant::now() + Duration::from_micros(micros));
        match svc.answer_with(id, &q, Semantics::nulls(), &opts) {
            Ok(ans) => assert_eq!(ans, reference),
            Err(ServeError::DeadlineExceeded { .. }) => {}
            Err(e) => panic!("unexpected serve error: {e}"),
        }
        assert_eq!(svc.answer(id, &q, Semantics::nulls()).unwrap(), reference);
    }
}

/// Admission control degrades rather than refuses: when the estimated
/// sub-relation-cache footprint cannot fit the budget, the serve runs
/// uncached, still answers exactly, and the degraded counter moves.
#[test]
fn over_budget_serve_degrades_to_uncached_and_stays_exact() {
    let _serial = serial();
    quiet_injected_panics();
    let sv = scenario(0xE5);
    let q = sv.queries[0].1.compile();
    let svc = MappingService::new();
    let id = svc.register(sv.scenario.gsm.clone(), sv.scenario.source.clone());
    svc.set_shard_count(id, 3).unwrap();
    let reference = svc.answer(id, &q, Semantics::nulls()).unwrap();
    assert_eq!(svc.serving_stats(id).unwrap().degraded, 0);

    // a budget no sub-relation cache can fit under
    svc.set_cache_budget(1);
    assert_eq!(svc.answer(id, &q, Semantics::nulls()).unwrap(), reference);
    assert!(svc.serving_stats(id).unwrap().degraded >= 1);

    // back to unlimited: serving recovers the cached path
    svc.set_cache_budget(0);
    assert_eq!(svc.answer(id, &q, Semantics::nulls()).unwrap(), reference);
}
