//! Wire equivalence: every answer served over a real socket is
//! **byte-identical** to the in-process engine's answer for the same
//! query — across Semantics × Mode, shard counts K ∈ {1, 4, Auto}, ad-hoc
//! and bound-template serving, and under churn deltas applied mid-traffic.
//!
//! The comparison works because both sides share one deterministic
//! encoder ([`gde_server::protocol::encode_answer`]): the mirror encodes
//! the engine's `Answer` locally and the test compares it to the exact
//! bytes the server put on the wire ([`gde_server::Response::raw_body`]).
//! When the engine refuses a query (e.g. exact semantics on a query
//! outside the tractable class), the wire must carry the matching typed
//! error instead.

use gde_core::engine::{ShardSpec, TemplateId};
use gde_core::{Answer, MappingId, MappingService, Semantics, ServeError};
use gde_datagraph::Alphabet;
use gde_dataquery::parser::{display_ree, display_rem};
use gde_dataquery::{canonicalize, DataQuery};
use gde_server::json::Json;
use gde_server::protocol::{delta_to_json, encode_answer, graph_to_json, ApiError};
use gde_server::{Client, ServerConfig, ServerHandle};
use gde_workload::{social_churn_deltas, social_serving_scenario, ServingScenario, SocialConfig};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

fn small_cfg(seed: u64) -> SocialConfig {
    SocialConfig {
        persons: 14,
        knows_per_person: 3,
        posts: 10,
        cities: 3,
        seed,
    }
}

/// The six Semantics × Mode combinations, as wire strings and engine
/// values.
fn semantics_grid() -> Vec<(&'static str, &'static str, Semantics)> {
    use gde_core::engine::Mode;
    use gde_core::ExactOptions;
    vec![
        ("nulls", "tuples", Semantics::Nulls(Mode::Tuples)),
        ("nulls", "boolean", Semantics::Nulls(Mode::Boolean)),
        (
            "least-informative",
            "tuples",
            Semantics::LeastInformative(Mode::Tuples),
        ),
        (
            "least-informative",
            "boolean",
            Semantics::LeastInformative(Mode::Boolean),
        ),
        (
            "exact",
            "tuples",
            Semantics::Exact(Mode::Tuples, ExactOptions::default()),
        ),
        (
            "exact",
            "boolean",
            Semantics::Exact(Mode::Boolean, ExactOptions::default()),
        ),
    ]
}

/// Render a scenario query as wire text. Conjunctive queries have no text
/// syntax and are not expressible over this protocol — they are skipped.
fn wire_query(q: &DataQuery, ta: &Alphabet) -> Option<(&'static str, String)> {
    match q {
        DataQuery::Rpq(r) => Some(("rpq", r.display(ta))),
        DataQuery::Ree(e) => Some(("ree", display_ree(e, ta))),
        DataQuery::Rem(m) => Some(("rem", display_rem(m, ta))),
        _ => None,
    }
}

/// The queries of a scenario that can travel over the wire, with their
/// kinds and texts.
fn expressible(sv: &ServingScenario) -> Vec<(&'static str, String, DataQuery)> {
    let ta = sv.scenario.gsm.target_alphabet();
    sv.queries
        .iter()
        .filter_map(|(_, q)| wire_query(q, ta).map(|(kind, text)| (kind, text, q.clone())))
        .collect()
}

/// Start a server, create a tenant and upload the scenario's mapping
/// (graph + rules as text) under `name`.
fn serve_scenario(sv: &ServingScenario, tenant: &str, name: &str, workers: usize) -> ServerHandle {
    let handle = gde_server::start(ServerConfig {
        workers,
        ..ServerConfig::default()
    })
    .expect("bind ephemeral port");
    let mut c = Client::connect(handle.addr()).unwrap();
    let r = c
        .put(&format!("/tenants/{tenant}"), &Json::obj([]))
        .unwrap();
    assert_eq!(r.status, 201, "tenant creation");
    upload_mapping(&mut c, sv, tenant, name);
    handle
}

fn upload_mapping(c: &mut Client, sv: &ServingScenario, tenant: &str, name: &str) {
    let gsm = &sv.scenario.gsm;
    let sa = gsm.source_alphabet();
    let ta = gsm.target_alphabet();
    let target_labels: Vec<Json> = ta.labels().map(|l| Json::str(ta.name(l))).collect();
    let rules: Vec<Json> = gsm
        .rules()
        .iter()
        .map(|r| {
            Json::obj([
                ("source", Json::Str(r.source.display(sa))),
                ("target", Json::Str(r.target.display(ta))),
            ])
        })
        .collect();
    let body = Json::obj([
        ("name", Json::str(name)),
        ("source", graph_to_json(&sv.scenario.source)),
        ("rules", Json::Arr(rules)),
        ("target_labels", Json::Arr(target_labels)),
    ]);
    let r = c
        .post(&format!("/tenants/{tenant}/mappings"), &body)
        .unwrap();
    assert_eq!(
        r.status,
        201,
        "mapping upload: {}",
        String::from_utf8_lossy(&r.raw_body)
    );
}

/// What the wire must carry for an in-process result: the exact answer
/// bytes on success, or the mapped (status, code) on a typed refusal.
enum Expected {
    Bytes(String),
    Error(u16, String),
}

fn expected(result: Result<Answer, ServeError>) -> Expected {
    match result {
        Ok(a) => Expected::Bytes(encode_answer(&a).encode()),
        Err(e) => {
            let ae = ApiError::from_serve_error(&e);
            Expected::Error(ae.status, ae.code.to_string())
        }
    }
}

fn assert_matches_wire(exp: &Expected, r: &gde_server::Response, ctx: &str) {
    match exp {
        Expected::Bytes(bytes) => {
            assert_eq!(
                r.status,
                200,
                "{ctx}: {}",
                String::from_utf8_lossy(&r.raw_body)
            );
            assert_eq!(
                String::from_utf8_lossy(&r.raw_body),
                bytes.as_str(),
                "{ctx}: wire bytes differ from in-process answer"
            );
        }
        Expected::Error(status, code) => {
            assert_eq!(r.status, *status, "{ctx}: status");
            assert_eq!(
                r.error_code().as_deref(),
                Some(code.as_str()),
                "{ctx}: code"
            );
        }
    }
}

#[test]
fn wire_answers_match_in_process_across_semantics_modes_and_shards() {
    let sv = social_serving_scenario(&small_cfg(0xA1));
    let queries = expressible(&sv);
    assert!(queries.len() >= 8, "scenario expresses most queries");

    let handle = serve_scenario(&sv, "acme", "social", 4);
    let mut c = Client::connect(handle.addr()).unwrap();

    let mirror = MappingService::new();
    let mid = mirror.register(sv.scenario.gsm.clone(), sv.scenario.source.clone());

    for (wire_shards, spec) in [
        (Json::num(1.0), ShardSpec::Fixed(1)),
        (Json::num(4.0), ShardSpec::Fixed(4)),
        (Json::str("auto"), ShardSpec::Auto),
    ] {
        let r = c
            .post(
                "/tenants/acme/mappings/social/shards",
                &Json::obj([("shards", wire_shards.clone())]),
            )
            .unwrap();
        assert_eq!(r.status, 200, "set shards {}", wire_shards.encode());
        mirror.set_shard_count(mid, spec).unwrap();

        for (kind, text, q) in &queries {
            let compiled = q.compile();
            for (sem_str, mode_str, sem) in semantics_grid() {
                let exp = expected(mirror.answer(mid, &compiled, sem));
                let body = Json::obj([
                    ("query", Json::str(text)),
                    ("kind", Json::str(kind)),
                    ("semantics", Json::str(sem_str)),
                    ("mode", Json::str(mode_str)),
                ]);
                let r = c
                    .post("/tenants/acme/mappings/social/query", &body)
                    .unwrap();
                let ctx = format!(
                    "K={} {sem_str}/{mode_str} {kind} {text}",
                    wire_shards.encode()
                );
                assert_matches_wire(&exp, &r, &ctx);
            }
        }
    }
    assert_eq!(
        handle.state().http_5xx.load(Ordering::Relaxed),
        0,
        "no 5xx during equivalence sweep"
    );
}

#[test]
fn bound_template_answers_match_in_process() {
    let sv = social_serving_scenario(&small_cfg(0xB0));
    let queries = expressible(&sv);
    let handle = serve_scenario(&sv, "acme", "social", 4);
    let mut c = Client::connect(handle.addr()).unwrap();

    let mirror = MappingService::new();
    let mid = mirror.register(sv.scenario.gsm.clone(), sv.scenario.source.clone());
    let ta = sv.scenario.gsm.target_alphabet();

    for (kind, text, q) in &queries {
        // wire: register the template, read back id + canonical bindings
        let r = c
            .post(
                "/tenants/acme/mappings/social/templates",
                &Json::obj([("query", Json::str(text)), ("kind", Json::str(kind))]),
            )
            .unwrap();
        assert_eq!(r.status, 201, "template registration for {text}");
        let j = r.json().unwrap();
        let wire_id = j
            .get("template")
            .and_then(Json::as_str)
            .unwrap()
            .to_string();
        let wire_bindings: Vec<String> = j
            .get("bindings")
            .and_then(Json::as_arr)
            .unwrap()
            .iter()
            .map(|b| b.as_str().unwrap().to_string())
            .collect();

        // mirror: same canonicalisation, in process
        let (skeleton, bindings) = canonicalize(q);
        let tid: TemplateId = mirror.register_template(mid, &skeleton).unwrap();
        assert_eq!(wire_id, format!("{:032x}", tid.skeleton_hash()));
        let names: Vec<String> = bindings
            .labels()
            .iter()
            .map(|l| ta.name(*l).to_string())
            .collect();
        assert_eq!(wire_bindings, names, "canonical binding order for {text}");

        for (sem_str, mode_str, sem) in semantics_grid() {
            let exp = expected(mirror.answer_bound(mid, tid, bindings.labels(), sem));
            let body = Json::obj([
                (
                    "bindings",
                    Json::Arr(wire_bindings.iter().map(Json::str).collect()),
                ),
                ("semantics", Json::str(sem_str)),
                ("mode", Json::str(mode_str)),
            ]);
            let r = c
                .post(
                    &format!("/tenants/acme/mappings/social/templates/{wire_id}/query"),
                    &body,
                )
                .unwrap();
            assert_matches_wire(&exp, &r, &format!("bound {sem_str}/{mode_str} {text}"));
        }
    }

    // a bad arity must come back typed, not as a panic
    let (_, text, _) = &queries[0];
    let r = c
        .post(
            "/tenants/acme/mappings/social/templates",
            &Json::obj([("query", Json::str(text))]),
        )
        .unwrap();
    let wire_id = r
        .json()
        .unwrap()
        .get("template")
        .and_then(Json::as_str)
        .unwrap()
        .to_string();
    let r = c
        .post(
            &format!("/tenants/acme/mappings/social/templates/{wire_id}/query"),
            &Json::obj([(
                "bindings",
                Json::Arr(vec![
                    Json::str("contact"),
                    Json::str("contact"),
                    Json::str("contact"),
                    Json::str("contact"),
                    Json::str("contact"),
                    Json::str("contact"),
                    Json::str("contact"),
                ]),
            )]),
        )
        .unwrap();
    assert_eq!(r.status, 422);
    assert_eq!(r.error_code().as_deref(), Some("binding-arity"));
}

#[test]
fn churn_deltas_under_live_traffic_stay_equivalent() {
    let cfg = small_cfg(0xC4);
    let sv = social_serving_scenario(&cfg);
    let queries = expressible(&sv);
    let rounds = 4usize;
    let deltas = social_churn_deltas(&cfg, rounds, 5, 0xD1);
    assert_eq!(deltas.len(), rounds);

    // precompute the expected bytes for every (generation, query): a
    // response observed while a delta is in flight must equal one of the
    // generations' answers — never a torn in-between
    let mirror = MappingService::new();
    let mid: MappingId = mirror.register(sv.scenario.gsm.clone(), sv.scenario.source.clone());
    mirror.set_shard_count(mid, ShardSpec::Fixed(4)).unwrap();
    let compiled: Vec<_> = queries.iter().map(|(_, _, q)| q.compile()).collect();
    let mut by_generation: Vec<Vec<String>> = Vec::with_capacity(rounds + 1);
    let fingerprint = |svc: &MappingService, id| -> Vec<String> {
        compiled
            .iter()
            .map(|q| encode_answer(&svc.answer(id, q, Semantics::nulls()).unwrap()).encode())
            .collect()
    };
    by_generation.push(fingerprint(&mirror, mid));
    for d in &deltas {
        mirror.apply_delta(mid, d).unwrap();
        by_generation.push(fingerprint(&mirror, mid));
    }

    let handle = serve_scenario(&sv, "acme", "live", 8);
    {
        let mut c = Client::connect(handle.addr()).unwrap();
        let r = c
            .post(
                "/tenants/acme/mappings/live/shards",
                &Json::obj([("shards", Json::num(4.0))]),
            )
            .unwrap();
        assert_eq!(r.status, 200);
    }

    // live traffic: three clients hammer the query endpoints while the
    // main thread applies churn deltas over the wire
    let stop = Arc::new(AtomicBool::new(false));
    let addr = handle.addr();
    let valid: Arc<Vec<Vec<String>>> = Arc::new(
        (0..queries.len())
            .map(|qi| by_generation.iter().map(|g| g[qi].clone()).collect())
            .collect(),
    );
    let texts: Arc<Vec<(String, String)>> = Arc::new(
        queries
            .iter()
            .map(|(k, t, _)| (k.to_string(), t.clone()))
            .collect(),
    );
    let traffic: Vec<_> = (0..3)
        .map(|ti| {
            let stop = Arc::clone(&stop);
            let valid = Arc::clone(&valid);
            let texts = Arc::clone(&texts);
            std::thread::spawn(move || {
                let mut c = Client::connect(addr).unwrap();
                let mut served = 0usize;
                while !stop.load(Ordering::Relaxed) {
                    let qi = (served + ti) % texts.len();
                    let (kind, text) = &texts[qi];
                    let body = Json::obj([("query", Json::str(text)), ("kind", Json::str(kind))]);
                    let r = c.post("/tenants/acme/mappings/live/query", &body).unwrap();
                    assert_eq!(r.status, 200, "{}", String::from_utf8_lossy(&r.raw_body));
                    let got = String::from_utf8_lossy(&r.raw_body).to_string();
                    assert!(
                        valid[qi].contains(&got),
                        "mid-churn answer for query {qi} matches no generation: {got}"
                    );
                    served += 1;
                }
                served
            })
        })
        .collect();

    let mut c = Client::connect(addr).unwrap();
    for (round, d) in deltas.iter().enumerate() {
        let r = c
            .post("/tenants/acme/mappings/live/delta", &delta_to_json(d))
            .unwrap();
        assert_eq!(
            r.status,
            200,
            "delta round {round}: {}",
            String::from_utf8_lossy(&r.raw_body)
        );
        let gen = r.json().unwrap().get("generation").and_then(Json::as_u64);
        assert!(gen.is_some(), "delta reports its generation");
        // quiescent check: with the delta applied, every query must now be
        // byte-identical to the mirror at this generation
        for (qi, (kind, text, _)) in queries.iter().enumerate() {
            let body = Json::obj([("query", Json::str(text)), ("kind", Json::str(kind))]);
            let r = c.post("/tenants/acme/mappings/live/query", &body).unwrap();
            assert_eq!(r.status, 200);
            assert_eq!(
                String::from_utf8_lossy(&r.raw_body),
                by_generation[round + 1][qi].as_str(),
                "post-delta generation {} query {qi}",
                round + 1
            );
        }
    }

    stop.store(true, Ordering::Relaxed);
    let mut total = 0usize;
    for t in traffic {
        total += t.join().expect("traffic thread must not panic");
    }
    assert!(total > 0, "traffic actually ran mid-churn");
    assert_eq!(
        handle.state().http_5xx.load(Ordering::Relaxed),
        0,
        "no 5xx under churn"
    );
}
