//! `MappingService` lifecycle tests: LRU eviction under a byte budget,
//! concurrent serving from scoped threads, and delta-aware invalidation
//! (generation stamps, LAV in-place patching, full-rebuild fallbacks).

use gde_core::{Answer, MappingId, MappingService, Semantics, ServeError};
use gde_datagraph::{GraphDelta, NodeId, Value};
use gde_dataquery::CompiledQuery;
use gde_workload::{social_churn_deltas, social_serving_scenario, ServingScenario, SocialConfig};

fn scenario(seed: u64) -> ServingScenario {
    social_serving_scenario(&SocialConfig {
        persons: 20,
        knows_per_person: 3,
        posts: 12,
        cities: 3,
        seed,
    })
}

fn compiled_batch(sv: &ServingScenario) -> Vec<CompiledQuery> {
    sv.queries.iter().map(|(_, q)| q.compile()).collect()
}

/// Answer every query under both canonical semantics and collect the
/// results — the fingerprint used to compare service states.
fn fingerprint(svc: &MappingService, id: MappingId, qs: &[CompiledQuery]) -> Vec<Answer> {
    let mut out = Vec::new();
    for q in qs {
        out.push(svc.answer(id, q, Semantics::nulls()).unwrap());
        out.push(svc.answer(id, q, Semantics::nulls_boolean()).unwrap());
        if q.is_equality_only() {
            out.push(svc.answer(id, q, Semantics::least_informative()).unwrap());
        }
    }
    out
}

#[test]
fn lru_evicts_least_recently_served_under_byte_budget() {
    let svc = MappingService::new();
    let svs: Vec<ServingScenario> = (0..3).map(|i| scenario(0xE0 + i)).collect();
    let ids: Vec<MappingId> = svs
        .iter()
        .map(|sv| svc.register(sv.scenario.gsm.clone(), sv.scenario.source.clone()))
        .collect();
    let q = svs[0].queries[0].1.compile();
    // measure one resident solution, then budget for about two of them
    svc.answer(ids[0], &q, Semantics::nulls()).unwrap();
    let one = svc.cached_bytes();
    assert!(one > 0);
    svc.set_cache_budget(one * 5 / 2);
    svc.answer(ids[1], &q, Semantics::nulls()).unwrap();
    assert_eq!(svc.stats().cached_solutions, 2, "two fit the budget");
    // third build must evict the least-recently-served: mapping 0
    svc.answer(ids[2], &q, Semantics::nulls()).unwrap();
    assert!(!svc.is_cached(ids[0], Semantics::nulls()), "LRU evicted");
    assert!(svc.is_cached(ids[1], Semantics::nulls()));
    assert!(svc.is_cached(ids[2], Semantics::nulls()));
    assert!(svc.stats().evictions >= 1);
    assert!(svc.cached_bytes() <= one * 5 / 2);
    // touch order decides the next victim: serve 1, then rebuild 0 ⇒ 2 goes
    svc.answer(ids[1], &q, Semantics::nulls()).unwrap();
    svc.answer(ids[0], &q, Semantics::nulls()).unwrap();
    assert!(svc.is_cached(ids[1], Semantics::nulls()));
    assert!(svc.is_cached(ids[0], Semantics::nulls()));
    assert!(!svc.is_cached(ids[2], Semantics::nulls()));
    // eviction is invisible in the answers
    let before = fingerprint(&svc, ids[2], &compiled_batch(&svs[2]));
    svc.set_cache_budget(0);
    assert_eq!(before, fingerprint(&svc, ids[2], &compiled_batch(&svs[2])));
}

#[test]
fn scoped_threads_get_identical_answers() {
    let sv = scenario(0xC0);
    let queries = compiled_batch(&sv);
    // reference: a fresh service served single-threaded
    let single = MappingService::new();
    let sid = single.register(sv.scenario.gsm.clone(), sv.scenario.source.clone());
    let expected = fingerprint(&single, sid, &queries);
    // fresh service, four scoped readers racing the first build too
    let svc = MappingService::new();
    let id = svc.register(sv.scenario.gsm.clone(), sv.scenario.source.clone());
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..4)
            .map(|_| scope.spawn(|| fingerprint(&svc, id, &queries)))
            .collect();
        for h in handles {
            assert_eq!(h.join().unwrap(), expected);
        }
    });
    // the batch entry point agrees as well
    for sem in [Semantics::nulls(), Semantics::nulls_boolean()] {
        let batch = svc.answer_batch(id, &queries, sem);
        for (q, got) in queries.iter().zip(batch) {
            assert_eq!(got.unwrap(), svc.answer(id, q, sem).unwrap());
        }
    }
}

#[test]
fn additive_lav_delta_patches_and_matches_full_rebuild() {
    let sv = scenario(0xD0);
    let queries = compiled_batch(&sv);
    let cfg = SocialConfig {
        persons: 20,
        knows_per_person: 3,
        posts: 12,
        cities: 3,
        seed: 0xD0,
    };
    let deltas = social_churn_deltas(&cfg, 3, 5, 0xFEED);

    let patching = MappingService::new();
    let pid = patching.register(sv.scenario.gsm.clone(), sv.scenario.source.clone());
    let rebuilding = MappingService::new();
    rebuilding.set_delta_patching(false);
    let rid = rebuilding.register(sv.scenario.gsm.clone(), sv.scenario.source.clone());

    assert_eq!(patching.generation(pid), Some(0));
    let mut expected_gen = 0;
    for delta in &deltas {
        // warm caches so the delta actually has something to patch
        fingerprint(&patching, pid, &queries);
        fingerprint(&rebuilding, rid, &queries);
        let rp = patching.apply_delta(pid, delta).unwrap();
        let rr = rebuilding.apply_delta(rid, delta).unwrap();
        assert_eq!(rp.added_edges, rr.added_edges);
        if rp.added_edges > 0 {
            expected_gen += 1;
            assert!(rp.patched, "additive LAV delta must patch in place");
            assert!(!rr.patched, "patching disabled ⇒ invalidate");
            assert!(!rebuilding.is_cached(rid, Semantics::nulls()));
        }
        assert_eq!(patching.generation(pid), Some(expected_gen));
        // both routes agree with each other after the delta
        assert_eq!(
            fingerprint(&patching, pid, &queries),
            fingerprint(&rebuilding, rid, &queries)
        );
    }
    assert!(patching.stats().patched_deltas >= 1);
    // the exact engine consumes the patched skeleton identically too (on
    // this workload both typically hit the same TooComplex bound — the
    // point is that patched and rebuilt skeletons behave the same)
    for (_, q) in sv.queries.iter().take(2) {
        let c = q.compile();
        assert_eq!(
            patching.answer(pid, &c, Semantics::exact()),
            rebuilding.answer(rid, &c, Semantics::exact())
        );
    }
}

#[test]
fn lav_removals_unpatch_in_place_and_match_rebuild() {
    let sv = scenario(0xA7);
    let queries = compiled_batch(&sv);
    let svc = MappingService::new();
    let id = svc.register(sv.scenario.gsm.clone(), sv.scenario.source.clone());
    fingerprint(&svc, id, &queries);
    assert!(svc.is_cached(id, Semantics::nulls()));
    let gen0 = svc.generation(id).unwrap();

    // remove an existing knows edge (target word length 1): the matching
    // contact edge is deleted from the cached solutions in place
    let src = svc.source(id).unwrap();
    let (u, _, v) = src
        .edges()
        .find(|&(_, l, _)| src.alphabet().name(l) == "knows")
        .expect("social graph has knows edges");
    let delta = GraphDelta::new().without_edge(u, "knows", v);
    let report = svc.apply_delta(id, &delta).unwrap();
    assert_eq!(report.removed_edges, 1);
    assert!(report.patched, "bounded LAV removals are absorbed in place");
    assert_eq!(report.generation, gen0 + 1);
    assert_eq!(svc.generation(id), Some(gen0 + 1));

    // unpatched answers match a fresh service over the mutated graph
    let fresh = MappingService::new();
    let fid = fresh.register(sv.scenario.gsm.clone(), svc.source(id).unwrap());
    assert_eq!(
        fingerprint(&svc, id, &queries),
        fingerprint(&fresh, fid, &queries)
    );

    // a removal whose fresh path carries an invented middle (likes/src →
    // endorses·via, target word length 2) unpatches too: the chain and its
    // invented node disappear exactly as a rebuild would drop them
    let src = svc.source(id).unwrap();
    let (lu, _, lv) = src
        .edges()
        .find(|&(_, l, _)| src.alphabet().name(l) == "likes/src")
        .expect("social graph has likes edges");
    let report = svc
        .apply_delta(id, &GraphDelta::new().without_edge(lu, "likes/src", lv))
        .unwrap();
    assert!(report.patched, "chain removals are absorbed in place");
    let fresh2 = MappingService::new();
    let fid2 = fresh2.register(sv.scenario.gsm.clone(), svc.source(id).unwrap());
    assert_eq!(
        fingerprint(&svc, id, &queries),
        fingerprint(&fresh2, fid2, &queries)
    );
    assert!(svc.stats().patched_deltas >= 2);

    // with patching disabled the same removal shape invalidates instead
    let rebuilding = MappingService::new();
    rebuilding.set_delta_patching(false);
    let rid = rebuilding.register(sv.scenario.gsm.clone(), sv.scenario.source.clone());
    fingerprint(&rebuilding, rid, &queries);
    let report = rebuilding
        .apply_delta(rid, &GraphDelta::new().without_edge(u, "knows", v))
        .unwrap();
    assert!(!report.patched);
    assert!(
        !rebuilding.is_cached(rid, Semantics::nulls()),
        "generation bump invalidates the stale cache"
    );

    // a delta that changes nothing bumps nothing
    let gen = svc.generation(id).unwrap();
    fingerprint(&svc, id, &queries); // refreeze so the cache is resident
    let noop = GraphDelta::new().without_edge(u, "knows", v);
    let report = svc.apply_delta(id, &noop).unwrap();
    assert_eq!(report.generation, gen);
    assert!(svc.is_cached(id, Semantics::nulls()));
}

#[test]
fn delta_validation_and_unknown_mappings() {
    let sv = scenario(0x11);
    let svc = MappingService::new();
    let id = svc.register(sv.scenario.gsm.clone(), sv.scenario.source.clone());
    // invalid delta: unknown endpoint
    let bad = GraphDelta::new().with_edge(NodeId(0), "knows", NodeId(9999));
    assert!(matches!(
        svc.apply_delta(id, &bad),
        Err(ServeError::InvalidDelta(_))
    ));
    assert_eq!(svc.generation(id), Some(0), "failed deltas bump nothing");
    // node additions alone are additive and keep caches warm
    let q = sv.queries[0].1.compile();
    svc.answer(id, &q, Semantics::nulls()).unwrap();
    let watermark = svc.source(id).unwrap().fresh_id_watermark();
    let grow = GraphDelta::new().with_node(NodeId(watermark), Value::str("zoe"));
    let report = svc.apply_delta(id, &grow).unwrap();
    assert!(report.patched);
    assert_eq!(report.added_nodes, 1);
    assert!(svc.is_cached(id, Semantics::nulls()));
    // unknown mapping: a handle that was unregistered stays invalid
    let dangling: MappingId = {
        let tmp = svc.register(sv.scenario.gsm.clone(), sv.scenario.source.clone());
        svc.unregister(tmp);
        tmp
    };
    assert!(matches!(
        svc.apply_delta(dangling, &GraphDelta::new()),
        Err(ServeError::UnknownMapping(_))
    ));
}

#[test]
fn tenant_labels_stick_and_unknown_mappings_refuse_them() {
    let sv = scenario(0x21);
    let svc = MappingService::new();
    let id = svc.register(sv.scenario.gsm.clone(), sv.scenario.source.clone());
    assert_eq!(svc.tenant_label(id).as_deref(), Some(""), "unlabelled");
    svc.set_tenant_label(id, "acme").unwrap();
    assert_eq!(svc.tenant_label(id).as_deref(), Some("acme"));
    let stats = svc.serving_stats(id).unwrap();
    assert_eq!(stats.tenant, "acme", "stats carry the label");
    // relabelling is allowed (tenant rename); stats follow
    svc.set_tenant_label(id, "zenith").unwrap();
    assert_eq!(svc.serving_stats(id).unwrap().tenant, "zenith");
    let dangling = {
        let tmp = svc.register(sv.scenario.gsm.clone(), sv.scenario.source.clone());
        svc.unregister(tmp);
        tmp
    };
    assert!(matches!(
        svc.set_tenant_label(dangling, "acme"),
        Err(ServeError::UnknownMapping(_))
    ));
    assert_eq!(svc.tenant_label(dangling), None);
}

#[test]
fn absorb_aggregates_within_a_tenant_and_refuses_cross_tenant_bleed() {
    use gde_core::engine::ServingStats;

    let sv = scenario(0x22);
    let queries = compiled_batch(&sv);
    let svc = MappingService::new();
    let a1 = svc.register(sv.scenario.gsm.clone(), sv.scenario.source.clone());
    let a2 = svc.register(sv.scenario.gsm.clone(), sv.scenario.source.clone());
    let b = svc.register(sv.scenario.gsm.clone(), sv.scenario.source.clone());
    svc.set_tenant_label(a1, "acme").unwrap();
    svc.set_tenant_label(a2, "acme").unwrap();
    svc.set_tenant_label(b, "zenith").unwrap();
    for id in [a1, a2, b] {
        for q in &queries {
            svc.answer(id, q, Semantics::nulls()).unwrap();
            svc.answer(id, q, Semantics::nulls_boolean()).unwrap();
        }
    }
    let s1 = svc.serving_stats(a1).unwrap();
    let s2 = svc.serving_stats(a2).unwrap();
    let sb = svc.serving_stats(b).unwrap();
    assert!(s1.tuple_evals > 0 && s2.tuple_evals > 0 && sb.tuple_evals > 0);

    // same-tenant aggregation sums every counter
    let mut acme = ServingStats {
        tenant: "acme".to_string(),
        ..ServingStats::default()
    };
    assert!(acme.absorb(&s1));
    assert!(acme.absorb(&s2));
    assert_eq!(acme.tuple_evals, s1.tuple_evals + s2.tuple_evals);
    assert_eq!(acme.boolean_evals, s1.boolean_evals + s2.boolean_evals);
    assert_eq!(acme.tuples, s1.tuples + s2.tuples);
    assert_eq!(acme.cache_bytes, s1.cache_bytes + s2.cache_bytes);
    assert_eq!(
        acme.per_stripe.len(),
        s1.per_stripe.len().max(s2.per_stripe.len())
    );

    // cross-tenant absorption is refused and absorbs nothing
    let snapshot = acme.clone();
    assert!(!acme.absorb(&sb), "zenith stats must not fold into acme");
    assert_eq!(acme.tuple_evals, snapshot.tuple_evals);
    assert_eq!(acme.boolean_evals, snapshot.boolean_evals);
    assert_eq!(acme.cache_bytes, snapshot.cache_bytes);

    // an unlabelled accumulator with no recorded work adopts the first
    // label it sees, then defends it
    let mut fresh = ServingStats::default();
    assert!(fresh.absorb(&sb));
    assert_eq!(fresh.tenant, "zenith");
    assert!(!fresh.absorb(&s1));
    assert_eq!(fresh.tuple_evals, sb.tuple_evals);
}
