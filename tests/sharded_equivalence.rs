//! Sharded serving equivalence: a `MappingService` partitioned into
//! K ∈ {1, 2, 4, 8} node-range stripes must serve answers byte-identical
//! to the unsharded engine for **every** `Semantics` × `Mode` on the
//! social serving workload — through both `answer` and `answer_batch` —
//! and stay identical while deltas patch stripes incrementally, across
//! worker-thread budgets, and with the generation-stamped sub-relation
//! cache warm (stale generations must never serve).

use gde_core::{Answer, ExactOptions, MappingService, Mode, Semantics, ServeError, ShardSpec};
use gde_dataquery::CompiledQuery;
use gde_workload::{
    sharded_serving_scenario, social_churn_deltas, social_serving_scenario, ServingScenario,
    SocialConfig,
};

const KS: [usize; 4] = [1, 2, 4, 8];

/// Every shard configuration under test: the fixed counts plus the
/// engine-picked `Auto`.
fn all_specs() -> Vec<ShardSpec> {
    let mut specs: Vec<ShardSpec> = KS.iter().map(|&k| ShardSpec::Fixed(k)).collect();
    specs.push(ShardSpec::Auto);
    specs
}

fn all_semantics() -> Vec<Semantics> {
    let mut out = Vec::new();
    for mode in [Mode::Tuples, Mode::Boolean] {
        out.push(Semantics::Nulls(mode));
        out.push(Semantics::LeastInformative(mode));
        out.push(Semantics::Exact(mode, ExactOptions::default()));
    }
    out
}

/// Answer every query under every semantics (errors included — an
/// out-of-fragment rejection must be identical too).
fn fingerprint(
    svc: &MappingService,
    id: gde_core::MappingId,
    queries: &[CompiledQuery],
) -> Vec<Result<Answer, ServeError>> {
    let mut out = Vec::new();
    for sem in all_semantics() {
        for q in queries {
            out.push(svc.answer(id, q, sem));
        }
        out.extend(svc.answer_batch(id, queries, sem));
    }
    out
}

#[test]
fn sharded_answers_identical_for_all_semantics_and_modes() {
    let sv: ServingScenario = social_serving_scenario(&SocialConfig {
        persons: 30,
        knows_per_person: 3,
        posts: 18,
        cities: 4,
        seed: 0x5A4D,
    });
    let queries: Vec<CompiledQuery> = sv.queries.iter().map(|(_, q)| q.compile()).collect();
    let reference = MappingService::new();
    let rid = reference.register(sv.scenario.gsm.clone(), sv.scenario.source.clone());
    let expected = fingerprint(&reference, rid, &queries);
    assert!(
        expected.iter().any(|a| a.is_ok()),
        "workload must produce real answers"
    );
    for spec in all_specs() {
        let svc = MappingService::new();
        let id = svc.register(sv.scenario.gsm.clone(), sv.scenario.source.clone());
        svc.set_shard_count(id, spec).unwrap();
        assert_eq!(
            fingerprint(&svc, id, &queries),
            expected,
            "{spec:?} must serve byte-identical answers"
        );
        // the spec round-trips and resolves to a concrete stripe count
        assert_eq!(svc.shard_spec(id), Some(spec));
        assert!(svc.shard_count(id).unwrap() >= 1);
    }
}

#[test]
fn sharded_answers_survive_incremental_deltas() {
    let cfg = SocialConfig {
        persons: 24,
        knows_per_person: 3,
        posts: 14,
        cities: 3,
        seed: 0xDE17A,
    };
    let sv = social_serving_scenario(&cfg);
    let queries: Vec<CompiledQuery> = sv.queries.iter().map(|(_, q)| q.compile()).collect();
    let deltas = social_churn_deltas(&cfg, 3, 4, 0xBEEF);
    // one unsharded reference, one service per K, all fed the same churn
    let reference = MappingService::new();
    let rid = reference.register(sv.scenario.gsm.clone(), sv.scenario.source.clone());
    let sharded: Vec<_> = all_specs()
        .into_iter()
        .map(|spec| {
            let svc = MappingService::new();
            let id = svc.register(sv.scenario.gsm.clone(), sv.scenario.source.clone());
            svc.set_shard_count(id, spec).unwrap();
            (spec, svc, id)
        })
        .collect();
    for delta in &deltas {
        // warm caches so deltas patch rather than build cold
        let expected = fingerprint(&reference, rid, &queries);
        for (k, svc, id) in &sharded {
            assert_eq!(fingerprint(svc, *id, &queries), expected, "pre-delta {k:?}");
        }
        reference.apply_delta(rid, delta).unwrap();
        for (_, svc, id) in &sharded {
            svc.apply_delta(*id, delta).unwrap();
        }
    }
    let expected = fingerprint(&reference, rid, &queries);
    for (k, svc, id) in &sharded {
        assert_eq!(
            fingerprint(svc, *id, &queries),
            expected,
            "post-churn {k:?}"
        );
        assert!(
            svc.stats().patched_deltas >= 1,
            "churn must exercise the patch path at {k:?}"
        );
        // the warm fingerprints before each delta and the batch half of
        // every fingerprint reuse cached stripe results; the equivalence
        // asserts above prove no stale generation ever served
        if matches!(k, ShardSpec::Fixed(n) if *n >= 2) {
            assert!(
                svc.serving_stats(*id).unwrap().cache_hits > 0,
                "churned serving at {k:?} must reuse the sub-relation cache"
            );
        }
    }
}

#[test]
fn sharded_answers_identical_across_thread_counts() {
    // `par::set_max_threads` is process-global; this is the only test in
    // the binary that moves it, and answers must be identical at every
    // setting anyway, so concurrent tests cannot observe a difference.
    let sv: ServingScenario = social_serving_scenario(&SocialConfig {
        persons: 24,
        knows_per_person: 3,
        posts: 12,
        cities: 3,
        seed: 0xC0DE,
    });
    let queries: Vec<CompiledQuery> = sv.queries.iter().map(|(_, q)| q.compile()).collect();
    let reference = MappingService::new();
    let rid = reference.register(sv.scenario.gsm.clone(), sv.scenario.source.clone());
    let expected = fingerprint(&reference, rid, &queries);
    for threads in [1usize, 2, 4] {
        gde_datagraph::par::set_max_threads(threads);
        for spec in all_specs() {
            let svc = MappingService::new();
            let id = svc.register(sv.scenario.gsm.clone(), sv.scenario.source.clone());
            svc.set_shard_count(id, spec).unwrap();
            assert_eq!(
                fingerprint(&svc, id, &queries),
                expected,
                "cold, {threads} thread(s), {spec:?}"
            );
            // second pass serves out of the warm sub-relation cache and
            // must still be byte-identical
            assert_eq!(
                fingerprint(&svc, id, &queries),
                expected,
                "warm, {threads} thread(s), {spec:?}"
            );
        }
    }
    gde_datagraph::par::set_max_threads(0); // restore the env default
}

#[test]
fn repeated_batches_hit_the_sub_relation_cache() {
    let sv = sharded_serving_scenario(900, 0xCAFE);
    let queries: Vec<CompiledQuery> = sv.queries.iter().map(|(_, q)| q.compile()).collect();
    let svc = MappingService::new();
    let id = svc.register(sv.scenario.gsm.clone(), sv.scenario.source.clone());
    svc.set_shard_count(id, 4).unwrap();
    let cold = svc.answer_batch(id, &queries, Semantics::nulls());
    assert!(cold.iter().any(|a| a.is_ok()));
    let stats = svc.serving_stats(id).unwrap();
    let (hits0, misses0) = (stats.cache_hits, stats.cache_misses);
    assert!(misses0 > 0, "cold batch must populate the cache");
    assert!(
        stats.memo_build_ns > 0,
        "phase-1 memo construction runs (and is timed) before the fan-out"
    );
    let warm = svc.answer_batch(id, &queries, Semantics::nulls());
    assert_eq!(warm, cold, "warm batch must be byte-identical");
    let stats = svc.serving_stats(id).unwrap();
    assert!(
        stats.cache_hits > hits0,
        "repeated batch must hit the cache"
    );
    assert_eq!(
        stats.cache_misses, misses0,
        "steady-state serving takes no new misses"
    );
    assert!(stats.cache_hit_rate() > 0.0);
}

#[test]
fn sharded_scenario_batch_is_consistent_at_small_scale() {
    // the bench workload itself, shrunk: equivalence across K plus class
    // coverage sanity — including the high-cardinality merge-bound batch
    // whose tuple merges exercise the streaming k-way path
    let sv = sharded_serving_scenario(900, 0x77);
    let mut queries: Vec<CompiledQuery> = sv.queries.iter().map(|(_, q)| q.compile()).collect();
    assert!(queries.len() >= 10);
    assert!(queries.iter().any(|q| !q.is_equality_only()));
    let mut ta = sv.scenario.gsm.target_alphabet().clone();
    queries.extend(
        gde_workload::merge_bound_queries(&mut ta)
            .iter()
            .map(|(_, q)| q.compile()),
    );
    let reference = MappingService::new();
    let rid = reference.register(sv.scenario.gsm.clone(), sv.scenario.source.clone());
    for sem in [Semantics::nulls(), Semantics::nulls_boolean()] {
        let expected = reference.answer_batch(rid, &queries, sem);
        for spec in [ShardSpec::Fixed(2), ShardSpec::Fixed(4), ShardSpec::Auto] {
            let svc = MappingService::new();
            let id = svc.register(sv.scenario.gsm.clone(), sv.scenario.source.clone());
            svc.set_shard_count(id, spec).unwrap();
            assert_eq!(svc.answer_batch(id, &queries, sem), expected, "{spec:?}");
        }
    }
}
