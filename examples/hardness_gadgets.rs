//! Tour of the executable hardness gadgets (§5, §6 of the paper).
//!
//! * Theorem 1: a fixed LAV/GAV relational/reachability mapping and an
//!   equality-RPQ error query encode PCP — query answering is undecidable.
//! * Proposition 3: a LAV relational mapping and a path query with three
//!   inequalities encode 3-colourability — exact answering is coNP-hard.
//!
//! ```text
//! cargo run --release --example hardness_gadgets
//! ```

use graph_data_exchange::core::{certain_boolean_exact, ExactOptions};
use graph_data_exchange::reductions::{PcpInstance, Thm1Gadget, ThreeColGadget};

fn main() {
    // ===== Theorem 1: PCP ==================================================
    println!("== Theorem 1: PCP inside schema mappings ==\n");
    let inst = PcpInstance::new(&[("a", "ab"), ("ba", "a")]);
    println!("PCP instance: (a,ab), (ba,a)");
    let sol = inst.solve_bounded(10).expect("solvable instance");
    println!(
        "solver found tile sequence {:?}, matched word {:?}",
        sol,
        inst.solution_word(&sol).unwrap()
    );

    let gadget = Thm1Gadget::build(inst);
    println!(
        "gadget: source {} nodes, mapping {} rules (LAV: {}, rel/reach: {})",
        gadget.source.node_count(),
        gadget.gsm.len(),
        gadget.gsm.classify().lav,
        gadget.gsm.classify().relational_reachability,
    );

    // the lazy solution satisfies the mapping but the error query unmasks it
    let lazy = gadget.lazy_target();
    assert!(gadget.gsm.is_solution(&gadget.source, &lazy));
    assert!(gadget.error_fires(&lazy));
    println!("lazy junk solution: satisfies M, caught by the error query ✓");

    // the genuine encoding defeats the error query — witnessing that
    // (start, end) is NOT a certain answer, i.e. PCP solvability leaks
    // through certain answers
    assert!(gadget.witnesses_not_certain(&sol));
    println!("encoded PCP solution: satisfies M, defeats the error query ✓");
    println!("⇒ (start,end) ∉ certain(Q): exactly when the PCP instance is solvable\n");

    // ===== Proposition 3: 3-colourability ==================================
    println!("== Proposition 3: 3-colourability via a 3-inequality query ==\n");
    type ColourCase<'a> = (&'a str, u32, Vec<(u32, u32)>);
    let cases: Vec<ColourCase> = vec![
        ("triangle", 3, vec![(0, 1), (1, 2), (2, 0)]),
        (
            "K4 (not 3-colourable)",
            4,
            vec![(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)],
        ),
        ("5-cycle", 5, vec![(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)]),
    ];
    for (name, n, edges) in cases {
        let g = ThreeColGadget::build(n, &edges);
        let colourable = g.brute_force_colouring().is_some();
        let certain = certain_boolean_exact(
            &g.gsm,
            &g.query,
            &g.source,
            ExactOptions {
                max_invented: 16,
                max_patterns: 100_000_000,
            },
        )
        .unwrap();
        println!(
            "{name}: 3-colourable = {colourable}, certain(Q) = {certain}  ({})",
            if certain != colourable {
                "agrees: certain ⇔ NOT colourable ✓"
            } else {
                "DISAGREES ✗"
            }
        );
        assert_eq!(certain, !colourable);
    }
}
