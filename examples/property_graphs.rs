//! From property graphs (the Neo4j/LDBC model) to data graphs — the §1
//! abstraction claim, executed: push edge data to nodes, spread records
//! over extra nodes, then run the paper's machinery unchanged.
//!
//! ```text
//! cargo run --example property_graphs
//! ```

use gde_automata::parse_regex;
use graph_data_exchange::core::{answer_once, Gsm, Semantics};
use graph_data_exchange::datagraph::{Alphabet, NodeId, PropertyGraph, Value};
use graph_data_exchange::dataquery::{parse_ree, DataQuery};

fn main() {
    // ----- a property graph: nodes AND edges carry records ----------------
    let mut pg = PropertyGraph::new();
    pg.add_node(
        NodeId(0),
        vec![
            ("name".into(), Value::str("ann")),
            ("city".into(), Value::str("oslo")),
        ],
    );
    pg.add_node(
        NodeId(1),
        vec![
            ("name".into(), Value::str("bob")),
            ("city".into(), Value::str("oslo")),
        ],
    );
    pg.add_node(NodeId(2), vec![("name".into(), Value::str("cat"))]);
    pg.add_edge(NodeId(0), "follows", NodeId(1), vec![]);
    pg.add_edge(
        NodeId(1),
        "paid",
        NodeId(2),
        vec![("amount".into(), Value::int(250))],
    );

    // ----- encode: one data value per node, extra nodes for the rest ------
    let mut g = pg.to_data_graph(Some("name"));
    println!("encoded data graph:\n{g}");

    // property comparisons become data RPQs through the @-edges: people in
    // the same city, one following the other — @city⁻ is not expressible in
    // plain REE (no inverses), so walk forward: follows then compare cities
    // via the equality test on an @city…@city⁻-shaped detour is a GXPath
    // job; with REE we compare the *primary* values instead:
    let q = parse_ree("(follows)!=", g.alphabet_mut()).unwrap();
    println!("follows-pairs with different names: {:?}", q.eval_pairs(&g));

    // reified edge properties are ordinary nodes now:
    let q = parse_ree("'paid/src' '@amount'", g.alphabet_mut()).unwrap();
    let pairs = q.eval_pairs(&g);
    println!(
        "payment amounts hang off reified edges: {} path(s)",
        pairs.len()
    );

    // GXPath handles the inverse-axis comparisons the encoding invites:
    use graph_data_exchange::gxpath::{eval_path, parse_path_expr};
    let same_city = parse_path_expr(
        "'@city' ('@city'- follows '@city')= '@city'-",
        g.alphabet_mut(),
    )
    .unwrap();
    let r = eval_path(&same_city, &g);
    println!(
        "same-city follows-pairs via GXPath: {:?}",
        r.iter()
            .map(|(i, j)| (g.id_at(i as u32), g.id_at(j as u32)))
            .collect::<Vec<_>>()
    );

    // ----- and the exchange machinery runs unchanged on the encoding ------
    let mut sa = g.alphabet().clone();
    let mut ta = Alphabet::from_labels(["contact", "hop"]);
    let mut m = Gsm::new(sa.clone(), ta.clone());
    m.add_rule(
        parse_regex("follows", &mut sa).unwrap(),
        parse_regex("contact hop", &mut ta).unwrap(),
    );
    let q: DataQuery = parse_ree("(contact hop)!=", &mut ta).unwrap().into();
    let certain = answer_once(&m, &g, &q.compile(), Semantics::nulls())
        .unwrap()
        .into_pairs();
    println!("certain different-name contacts after exchange: {certain:?}");
    assert_eq!(certain, vec![(NodeId(0), NodeId(1))]);
}
