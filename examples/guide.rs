//! The user guide (`docs/GUIDE.md`) as one runnable program: build a
//! graph, define a mapping, register it, compile a query, answer under
//! every semantics, apply a delta, tune sharding, bound a serve
//! with deadlines and cancellation, consult the static analyzer, serve a
//! prepared template by binding labels per call, and put the same engine
//! behind the `gde-server` network front-end. Each step asserts
//! the outcome the guide promises, so `cargo run --example guide` is an
//! executable check of the documentation.

use gde_server::json::Json;
use graph_data_exchange::automata::parse_regex;
use graph_data_exchange::dataquery::{parse_ree, parse_rem};
use graph_data_exchange::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // §1 — a source data graph: nodes are (id, value) pairs
    let mut source = DataGraph::new();
    source.add_node(NodeId(0), Value::str("ann"))?;
    source.add_node(NodeId(1), Value::str("bob"))?;
    source.add_node(NodeId(2), Value::str("ann"))?;
    source.add_edge_str(NodeId(0), "follows", NodeId(1))?;
    source.add_edge_str(NodeId(1), "follows", NodeId(2))?;
    println!(
        "graph: {} nodes, {} edges",
        source.node_count(),
        source.edge_count()
    );

    // §2 — a schema mapping: every follows-edge must be witnessed by a
    // knows·trusts path on the target side
    let mut sa = source.alphabet().clone();
    let mut ta = Alphabet::from_labels(["knows", "trusts"]);
    let mut mapping = Gsm::new(sa.clone(), ta.clone());
    mapping.add_rule(
        parse_regex("follows", &mut sa)?,
        parse_regex("knows trusts", &mut ta)?,
    );
    let class = mapping.classify();
    assert!(class.relational && class.lav);
    println!("mapping: relational LAV, {} rule(s)", mapping.rules().len());

    // §3 — register with the owned serving engine
    let service = MappingService::new();
    let id = service.register(mapping, source);
    service.set_cache_budget(256 << 20);
    service.prepare(id, Semantics::nulls())?;
    assert!(service.is_cached(id, Semantics::nulls()));

    // §4 — compile a query once, serve it many times
    let q: DataQuery = parse_ree("(knows trusts knows trusts)=", &mut ta)?.into();
    let compiled: CompiledQuery = q.compile();
    assert!(compiled.is_equality_only());

    // §5 — certain answers under each semantics
    let nulls = service
        .answer(id, &compiled, Semantics::nulls())?
        .into_pairs();
    assert_eq!(nulls, vec![(NodeId(0), NodeId(2))]); // ann …→ ann
    let li = service
        .answer(id, &compiled, Semantics::least_informative())?
        .into_pairs();
    let exact = service
        .answer(id, &compiled, Semantics::exact())?
        .into_pairs();
    assert_eq!(li, nulls);
    assert_eq!(exact, nulls);
    assert!(service
        .answer(id, &compiled, Semantics::nulls_boolean())?
        .boolean());
    assert_eq!(
        Semantics::preferred_for(&compiled),
        Semantics::least_informative()
    );
    println!("certain answers (all engines agree): {nulls:?}");

    // §6 — a source delta: patched in place, not rebuilt
    let delta = GraphDelta::new()
        .with_node(NodeId(7), Value::str("cat"))
        .with_edge(NodeId(2), "follows", NodeId(7));
    let report = service.apply_delta(id, &delta)?;
    assert!(report.patched);
    assert_eq!(service.generation(id), Some(1));
    let after = service
        .answer(id, &compiled, Semantics::nulls())?
        .into_pairs();
    assert_eq!(after, vec![(NodeId(0), NodeId(2))]);
    println!("delta absorbed: generation {}", report.generation);

    // §7 — sharding is a pure performance knob: answers never change
    let unsharded = service.answer(id, &compiled, Semantics::nulls())?;
    service.set_shard_count(id, 4)?;
    assert_eq!(
        service.answer(id, &compiled, Semantics::nulls())?,
        unsharded
    );
    service.set_shard_count(id, ShardSpec::Auto)?;
    assert_eq!(service.shard_spec(id), Some(ShardSpec::Auto));
    assert_eq!(
        service.answer(id, &compiled, Semantics::nulls())?,
        unsharded
    );
    let stats = service.serving_stats(id).expect("registered");
    println!(
        "auto-resolved shard count: {:?}; serving stats: {} tuple evals, {} tuples",
        service.shard_count(id).expect("registered"),
        stats.tuple_evals,
        stats.tuples,
    );

    // §8 — bounded serves: deadlines and cancellation are typed errors,
    // and a refused or stopped serve never perturbs later answers
    let opts = ServeOptions::new().with_deadline(std::time::Instant::now());
    assert!(matches!(
        service.answer_with(id, &compiled, Semantics::nulls(), &opts),
        Err(ServeError::DeadlineExceeded { .. })
    ));
    let cancel = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(true));
    let opts = ServeOptions::new().with_cancel(cancel);
    assert!(matches!(
        service.answer_with(id, &compiled, Semantics::nulls(), &opts),
        Err(ServeError::Cancelled { .. })
    ));
    assert_eq!(
        service.answer(id, &compiled, Semantics::nulls())?,
        unsharded
    );
    let stats = service.serving_stats(id).expect("registered");
    assert_eq!(stats.rejected, 2);
    println!("bounded serves refused at the door: {}", stats.rejected);

    // §9 — the static analyzer: rule- and query-level verdicts without
    // evaluating anything, and workload-driven pruning on the serve path
    let never = DataQuery::Rpq(parse_regex("absent", &mut ta)?).compile();
    let report = service.analyze(id, &[compiled.clone(), never.clone()])?;
    assert_eq!(report.statically_empty(), 1); // no rule produces `absent`
    assert!(report.verdicts[0].estimate.is_some(), "snapshot resident");
    service.register_queries(id, std::slice::from_ref(&compiled))?;
    let before = service.serving_stats(id).expect("registered");
    let empty = service.answer(id, &never, Semantics::nulls())?;
    assert_eq!(empty.into_pairs(), vec![]);
    let after = service.serving_stats(id).expect("registered");
    assert_eq!(after.static_empty, before.static_empty + 1);
    assert_eq!(after.tuple_evals, before.tuple_evals, "no stripe touched");
    println!(
        "analyzer: {}/{} rules live, {} statically empty quer(ies) served O(1)",
        report.live_rules(),
        report.rule_count,
        report.statically_empty(),
    );

    // §10 — prepared templates: canonicalise once, bind labels per call
    let q1: DataQuery = parse_rem("@u.(knows trusts[u=])", &mut ta)?.into();
    let q2: DataQuery = parse_rem("@v.(knows trusts[v=])", &mut ta)?.into();
    let (skeleton, bind1) = canonicalize(&q1);
    let (skeleton2, bind2) = canonicalize(&q2);
    assert_eq!(skeleton.hash(), skeleton2.hash(), "alpha variants collide");
    assert_eq!(bind1, bind2, "same labels, same binding vector");
    let tpl = service.register_template(id, &skeleton)?;
    let bound = service.answer_bound(id, tpl, bind1.labels(), Semantics::nulls())?;
    assert_eq!(
        bound,
        service.answer(id, &q1.compile(), Semantics::nulls())?,
        "bound serves are byte-identical to ad-hoc serves"
    );
    let stats = service.serving_stats(id).expect("registered");
    assert!(stats.template_hits >= 2, "bound + routed ad-hoc both hit");
    println!(
        "prepared template {tpl}: {} hits, {} ns of compilation skipped",
        stats.template_hits, stats.compile_skipped_ns,
    );

    // §11 — the same engine over the network: a multi-tenant server on
    // an ephemeral port, the mapping uploaded as graph JSON + rule text
    let server = gde_server::start(gde_server::ServerConfig {
        workers: 2,
        ..gde_server::ServerConfig::default()
    })?;
    let mut client = gde_server::Client::connect(server.addr())?;
    assert_eq!(client.put("/tenants/acme", &Json::obj([]))?.status, 201);
    let upload = Json::obj([
        ("name", Json::str("m")),
        (
            "source",
            Json::obj([
                (
                    "nodes",
                    Json::Arr(vec![
                        Json::obj([("id", Json::num(0.0)), ("value", Json::str("ann"))]),
                        Json::obj([("id", Json::num(1.0)), ("value", Json::str("bob"))]),
                    ]),
                ),
                (
                    "edges",
                    Json::Arr(vec![Json::Arr(vec![
                        Json::num(0.0),
                        Json::str("follows"),
                        Json::num(1.0),
                    ])]),
                ),
            ]),
        ),
        (
            "rules",
            Json::Arr(vec![Json::obj([
                ("source", Json::str("follows")),
                ("target", Json::str("knows trusts")),
            ])]),
        ),
    ]);
    assert_eq!(client.post("/tenants/acme/mappings", &upload)?.status, 201);
    let r = client.post(
        "/tenants/acme/mappings/m/query",
        &Json::obj([("query", Json::str("knows trusts"))]),
    )?;
    assert_eq!(r.status, 200);
    let pairs = r.json().expect("json body");
    assert_eq!(
        pairs.get("pairs").and_then(Json::as_arr).map(<[Json]>::len),
        Some(1),
        "ann knows·trusts bob in every solution"
    );
    println!("served over the wire: {}", pairs.encode());

    // §12 — one-shot serving without a service
    let gsm2 = service.gsm(id).expect("registered");
    let src2 = service.source(id).expect("registered");
    let once = answer_once(&gsm2, &src2, &compiled, Semantics::nulls())?;
    assert_eq!(once, unsharded);
    println!("guide complete");
    Ok(())
}
