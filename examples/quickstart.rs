//! Quickstart: build a data graph, query it with data RPQs, define a graph
//! schema mapping, and answer queries over the exchanged data with certain
//! answers.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use gde_automata::parse_regex;
use graph_data_exchange::core::{universal_solution, Gsm, MappingService, Semantics};
use graph_data_exchange::datagraph::{Alphabet, DataGraph, NodeId, Value};
use graph_data_exchange::dataquery::{parse_ree, DataQuery};

fn main() {
    // ----- 1. a source data graph: each node is (id, data value) ---------
    let mut source = DataGraph::new();
    for (id, name) in [(0, "ann"), (1, "bob"), (2, "cat"), (3, "ann")] {
        source.add_node(NodeId(id), Value::str(name)).unwrap();
    }
    source
        .add_edge_str(NodeId(0), "follows", NodeId(1))
        .unwrap();
    source
        .add_edge_str(NodeId(1), "follows", NodeId(2))
        .unwrap();
    source
        .add_edge_str(NodeId(2), "follows", NodeId(3))
        .unwrap();
    println!("source graph:\n{source}");

    // ----- 2. a data RPQ: same display name at both ends of a follows-chain
    let q_src = parse_ree("(follows follows follows)=", source.alphabet_mut()).unwrap();
    println!(
        "(follows³)= on the source: {:?}\n",
        q_src.eval_pairs(&source)
    );

    // ----- 3. a schema mapping into a target schema ----------------------
    // every follows-edge must appear as a knows·trusts path on the target
    let mut sa = source.alphabet().clone();
    let mut ta = Alphabet::from_labels(["knows", "trusts"]);
    let mut m = Gsm::new(sa.clone(), ta.clone());
    m.add_rule(
        parse_regex("follows", &mut sa).unwrap(),
        parse_regex("knows trusts", &mut ta).unwrap(),
    );
    println!(
        "mapping is LAV: {}, relational: {}",
        m.classify().lav,
        m.classify().relational
    );

    // ----- 4. the universal solution (invented nodes carry SQL nulls) ----
    let sol = universal_solution(&m, &source).unwrap();
    println!("\nuniversal solution:\n{}", sol.graph);

    // ----- 5. certain answers over the target, through the serving engine
    // register once; the service owns the graphs (Arc-shared), caches the
    // canonical solutions, and answers any number of compiled queries
    let svc = MappingService::new();
    let id = svc.register(m, source);
    let q: DataQuery = parse_ree("(knows trusts knows trusts knows trusts)=", &mut ta)
        .unwrap()
        .into();
    let answers = svc
        .answer(id, &q.compile(), Semantics::nulls())
        .unwrap()
        .into_pairs();
    println!("certain answers to (knows·trusts)³ with equal endpoints: {answers:?}");
    assert_eq!(answers, vec![(NodeId(0), NodeId(3))]); // ann …→ ann
}
