//! A tour of GXPath-core with data tests (§9): pattern queries that go
//! beyond paths — and the tree formulas behind the undecidability results.
//!
//! ```text
//! cargo run --example gxpath_tour
//! ```

use graph_data_exchange::datagraph::{DataGraph, NodeId, Value};
use graph_data_exchange::gxpath::{eval_node, eval_path, parse_node_expr, parse_path_expr};
use graph_data_exchange::reductions::gxpath_gadget::{
    has_non_repeating_property, pcp_tree, phi_delta, phi_g,
};
use graph_data_exchange::reductions::PcpInstance;

fn main() {
    // ----- a small file-system-ish data graph ------------------------------
    // directories carry their owner as a data value
    let mut g = DataGraph::new();
    let nodes = [
        (0, "root"),
        (1, "alice"),
        (2, "bob"),
        (3, "alice"),
        (4, "bob"),
        (5, "alice"),
    ];
    for (id, owner) in nodes {
        g.add_node(NodeId(id), Value::str(owner)).unwrap();
    }
    for (u, v) in [(0, 1), (0, 2), (1, 3), (2, 4)] {
        g.add_edge_str(NodeId(u), "dir", NodeId(v)).unwrap();
    }
    g.add_edge_str(NodeId(3), "link", NodeId(5)).unwrap();
    g.add_edge_str(NodeId(4), "link", NodeId(5)).unwrap();

    println!("graph:\n{g}");

    // pairs connected by dir* whose owners coincide
    let q = parse_path_expr("(dir* )=", g.alphabet_mut()).unwrap();
    let r = eval_path(&q, &g);
    println!("(dir*)= pairs (same owner, descendant):");
    for (i, j) in r.iter() {
        if i != j {
            println!("    {} → {}", g.id_at(i as u32), g.id_at(j as u32));
        }
    }

    // node test: directories owning a link to a *different* owner —
    // note the inverse axis and negation, which plain RPQs cannot express
    let phi = parse_node_expr("<link!=> & !<dir>", g.alphabet_mut()).unwrap();
    println!(
        "\nnodes with a cross-owner link and no subdirectory: {:?}",
        eval_node(&phi, &g)
    );

    // mixed: go down a dir, check the child has a link back up to an
    // equally-owned node ([ϕ] filters mid-path)
    let q = parse_path_expr("dir [<(link)=>]", g.alphabet_mut()).unwrap();
    println!(
        "dir-steps into link-owners: {} pairs",
        eval_path(&q, &g).len()
    );

    // ----- the §9 machinery -----------------------------------------------
    println!("\n== Lemma 2 tree encoding ==");
    let inst = PcpInstance::new(&[("a", "ab"), ("ba", "a")]);
    let (tree, root) = pcp_tree(&inst);
    println!(
        "PCP tree: {} nodes, non-repeating: {}",
        tree.node_count(),
        has_non_repeating_property(&tree, root)
    );
    let pg = phi_g(&tree, root);
    let pd = phi_delta(&tree, root);
    println!(
        "ϕ_G holds at root: {}",
        graph_data_exchange::gxpath::eval_node_set(&pg, &tree, root)
    );
    println!(
        "ϕ_δ holds at root: {}",
        graph_data_exchange::gxpath::eval_node_set(&pd, &tree, root)
    );
    println!("(these formulas pin the tree inside any satisfying model — Theorem 7)");
}
