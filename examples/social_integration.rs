//! Virtual data integration of graph sources (§4 of the paper, LAV reading).
//!
//! Three independent "social" sources expose fragments of a global schema
//! `γ = {knows, works_with, manages}`; we pose data RPQs against the
//! (virtual) global database and get certain answers — facts true in every
//! global instance consistent with the sources.
//!
//! ```text
//! cargo run --example social_integration
//! ```

use gde_automata::parse_regex;
use graph_data_exchange::core::integration::Integration;
use graph_data_exchange::datagraph::{Alphabet, NodeId, Value};
use graph_data_exchange::dataquery::{parse_ree, DataQuery};

fn person(id: u32, name: &str) -> (NodeId, Value) {
    (NodeId(id), Value::str(name))
}

fn main() {
    let mut global = Alphabet::from_labels(["knows", "works_with", "manages"]);
    let mut task = Integration::new(global.clone());

    // source 1: a friendship crawl — tuples connected by `knows`
    task.add_source(
        "friends",
        parse_regex("knows", &mut global).unwrap(),
        &[
            (person(0, "ann"), person(1, "bob")),
            (person(1, "bob"), person(2, "cat")),
        ],
    )
    .unwrap();

    // source 2: an HR extract — pairs connected by `manages`
    task.add_source(
        "hr",
        parse_regex("manages", &mut global).unwrap(),
        &[(person(3, "dan"), person(0, "ann"))],
    )
    .unwrap();

    // source 3: a collaboration-mining tool: its pairs are only known to be
    // connected by a manages·works_with path (a proper LAV view)
    task.add_source(
        "collab",
        parse_regex("manages works_with", &mut global).unwrap(),
        &[(person(3, "dan"), person(2, "cat"))],
    )
    .unwrap();

    println!(
        "integration task: {} sources, mapping LAV: {}\n",
        task.gsm().len(),
        task.gsm().classify().lav
    );

    let queries: Vec<(&str, &str)> = vec![
        ("who knows whom (certainly)?", "knows"),
        ("two-hop acquaintance", "knows knows"),
        ("manager of someone with a different name", "manages!="),
        ("a manages-chain reaching a knows-edge", "manages knows"),
    ];
    for (what, src) in queries {
        let q: DataQuery = parse_ree(src, &mut global).unwrap().into();
        let answers = task.certain_answers(&q).unwrap().into_pairs();
        println!("{what}  [{src}]");
        for (u, v) in &answers {
            println!("    {u} → {v}");
        }
        if answers.is_empty() {
            println!("    (none are certain)");
        }
    }

    // The collab source's view is a 2-step path, so its intermediate is an
    // unknown: `manages works_with` IS certain for (dan, cat)…
    let q: DataQuery = parse_ree("manages works_with", &mut global).unwrap().into();
    let a = task.certain_answers(&q).unwrap().into_pairs();
    assert!(a.contains(&(NodeId(3), NodeId(2))));
    // …but `works_with` alone is not certain for anyone:
    let q: DataQuery = parse_ree("works_with", &mut global).unwrap().into();
    assert!(task.certain_answers(&q).unwrap().into_pairs().is_empty());
    println!("\n(works_with alone is certain for nobody — the view hides the midpoint)");
}
