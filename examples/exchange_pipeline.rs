//! A full data-exchange pipeline, run both ways (Proposition 1):
//!
//! 1. directly on graphs — universal solution with SQL nulls (§7);
//! 2. through the relational substrate — encode the source as `D_G`,
//!    translate the mapping to st-tgds, chase, decode (§6).
//!
//! The two routes agree up to renaming of invented nodes, and both answer
//! data RPQs with the same certain answers.
//!
//! ```text
//! cargo run --example exchange_pipeline
//! ```

use gde_automata::parse_regex;
use graph_data_exchange::core::translate::{
    chase_universal, translate_to_relational, verify_prop1,
};
use graph_data_exchange::core::{universal_solution, Gsm, MappingService, Semantics};
use graph_data_exchange::datagraph::{Alphabet, DataGraph, NodeId, Value};
use graph_data_exchange::dataquery::{parse_ree, DataQuery};
use graph_data_exchange::relational::{decode_graph, encode_graph, ValueNullStyle};

fn main() {
    // ----- source: a product catalogue graph ------------------------------
    let mut source = DataGraph::new();
    let items = [
        (0, "laptop"),
        (1, "charger"),
        (2, "dock"),
        (3, "laptop"), // same display name as item 0
    ];
    for (id, name) in items {
        source.add_node(NodeId(id), Value::str(name)).unwrap();
    }
    source
        .add_edge_str(NodeId(0), "bundles", NodeId(1))
        .unwrap();
    source
        .add_edge_str(NodeId(1), "bundles", NodeId(2))
        .unwrap();
    source
        .add_edge_str(NodeId(2), "bundles", NodeId(3))
        .unwrap();
    source
        .add_edge_str(NodeId(0), "variant", NodeId(3))
        .unwrap();

    // ----- mapping: bundles ⇒ contains·part, variant ⇒ sibling -----------
    let mut sa = source.alphabet().clone();
    let mut ta = Alphabet::from_labels(["contains", "part", "sibling"]);
    let mut m = Gsm::new(sa.clone(), ta.clone());
    m.add_rule(
        parse_regex("bundles", &mut sa).unwrap(),
        parse_regex("contains part", &mut ta).unwrap(),
    );
    m.add_rule(
        parse_regex("variant", &mut sa).unwrap(),
        parse_regex("sibling", &mut ta).unwrap(),
    );

    // ----- route A: direct graph-side universal solution ------------------
    let direct = universal_solution(&m, &source).unwrap();
    println!(
        "route A (graph): universal solution has {} nodes ({} invented null nodes)",
        direct.graph.node_count(),
        direct.invented.len()
    );

    // ----- route B: relational substrate ----------------------------------
    let (_, d_g) = encode_graph(&source);
    println!(
        "route B (relational): D_G has {} facts over {} relations",
        d_g.total_facts(),
        d_g.schema().len()
    );
    let rm = translate_to_relational(&m, &source).unwrap();
    println!(
        "    M_rel: {} st-tgds, {} target tgds, {} egds",
        rm.st_tgds.len(),
        rm.target_tgds.len(),
        rm.egds.len()
    );
    let chased = chase_universal(&rm).unwrap();
    println!("    chase produced {} facts", chased.total_facts());
    let decoded = decode_graph(
        &chased,
        m.target_alphabet(),
        ValueNullStyle::SqlNull,
        source.fresh_id_watermark(),
    )
    .unwrap();
    println!(
        "    decoded graph: {} nodes / {} edges",
        decoded.node_count(),
        decoded.edge_count()
    );

    // ----- Proposition 1: the routes agree --------------------------------
    assert!(verify_prop1(&m, &source).unwrap());
    println!("\nProposition 1 verified: chase(D_G) ≅ direct universal solution\n");

    // ----- certain answers on the exchanged data, served by the engine ----
    let svc = MappingService::new();
    let id = svc.register(m, source);
    // items whose 2-bundle-hop ends on an identically named item
    let q: DataQuery = parse_ree("(contains part contains part contains part)=", &mut ta)
        .unwrap()
        .into();
    let answers = svc
        .answer(id, &q.compile(), Semantics::nulls())
        .unwrap()
        .into_pairs();
    println!("certain: same-name items three bundle-hops apart: {answers:?}");
    assert_eq!(answers, vec![(NodeId(0), NodeId(3))]);

    let q: DataQuery = parse_ree("sibling=", &mut ta).unwrap().into();
    let answers = svc
        .answer(id, &q.compile(), Semantics::nulls())
        .unwrap()
        .into_pairs();
    println!("certain: same-name siblings: {answers:?}");
    assert_eq!(answers, vec![(NodeId(0), NodeId(3))]);
}
